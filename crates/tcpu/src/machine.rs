//! The CPU core: registers, pipeline fetch latch, PSR, signature register,
//! data cache, and every error detection mechanism of Table 1.
//!
//! # Execution model
//!
//! The simulator is behavioural, not cycle-accurate, but the *state* of the
//! four-stage pipeline is modelled explicitly so scan-chain fault injection
//! has an authentic surface:
//!
//! * the **fetch latch** holds the next instruction word (prefetched at the
//!   end of the previous step), so a flip between two instructions corrupts
//!   the instruction about to execute — exactly like a flip in Thor's IF/ID
//!   pipeline register;
//! * the **operand latch** and **result latch** hold the last consumed
//!   operands and the last committed result (flips there are usually
//!   overwritten or latent, as in the real pipeline);
//! * the **store buffer**, **fill buffer** and **EDAC syndrome** model the
//!   memory interface state.
//!
//! A trap (a detected error) freezes the machine: the experiment has
//! terminated, as in GOOFI's termination condition.

use crate::access::{AccessKind, AccessTrace, TraceSlot, TraceUnit};
use crate::cache::{DataCache, LINE_BYTES, WORDS_PER_LINE};
use crate::edm::{ErrorMechanism as Edm, Trap};
use crate::isa::{self, Decoded, Opcode};
use crate::mem::{self, Memory, Region};
use crate::vis::{VisSlot, VisTrace, VisUnit};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-ROM-slot memo of decoded instruction words. Each entry stores the
/// word it was decoded from and is validated against the actual fetched
/// word on every hit, so every way code can change under the memo —
/// `poke_word`, a scan-chain flip of the fetch latch, a store to code —
/// is handled by construction: a changed word simply misses and decodes
/// fresh. The table is pre-populated for the whole ROM image at
/// [`Machine::load_program`] and shared between clones through an `Arc`,
/// so every machine cloned from a loaded one — checkpoints, lockstep
/// replicas, convergence probes — starts warm without re-decoding or
/// re-allocating; a post-load ROM change copies-on-write through
/// `Arc::make_mut`. Behaviourally inert: equality ignores it and it
/// serializes as `null` and deserializes empty.
#[derive(Debug, Default, Clone)]
struct DecodeMemo(Arc<Vec<Option<(u32, Decoded)>>>);

impl PartialEq for DecodeMemo {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for DecodeMemo {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for DecodeMemo {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(DecodeMemo::default())
    }
}

/// Predecoded straight-line runs of the ROM image, the fast-replay engine's
/// working set. `words` mirrors the ROM word-for-word, `decoded` holds the
/// predecoded form of every decodable word, and `run_len[s]` is the number
/// of consecutive straight-line instructions starting at slot `s` (zero when
/// slot `s` itself is not straight-line; a run never includes the last ROM
/// slot, so the slot after a run is always a valid fetch address). Built
/// once per program load and shared between clones through an `Arc`, like
/// [`DecodeMemo`]. Staleness is detected by two O(1) checks at replay
/// entry: the fetched word must match the predecoded image (catches a
/// scan-flipped latch) and the memory's host ROM-write counter must still
/// equal the one recorded at build time (any later `load_rom_word`
/// invalidates every block — coarse, but runtime stores cannot reach ROM,
/// so only host pokes ever move it). A mismatch just falls back to the
/// scalar path.
#[derive(Debug, Default)]
struct BlockTable {
    words: Vec<u32>,
    decoded: Vec<Option<Decoded>>,
    run_len: Vec<u32>,
    rom_version: u64,
}

impl BlockTable {
    fn build(memory: &Memory) -> BlockTable {
        let words: Vec<u32> = memory.rom_words().to_vec();
        let n = words.len();
        let decoded: Vec<Option<Decoded>> = words.iter().map(|&w| isa::decode(w)).collect();
        let mut run_len = vec![0u32; n];
        for s in (0..n.saturating_sub(1)).rev() {
            if decoded[s].is_some_and(|d| d.op.is_straight_line()) {
                run_len[s] = run_len[s + 1] + 1;
            }
        }
        BlockTable {
            words,
            decoded,
            run_len,
            rom_version: memory.rom_version(),
        }
    }
}

/// Behaviourally inert [`BlockTable`] handle (same contract as
/// [`DecodeMemo`]): equality ignores it, it serializes as `null` and
/// deserializes as `None` (no table means every replay attempt falls back,
/// so a deserialized machine runs scalar until re-enabled). The `Option`
/// lets the replay entry point move the table out and back with plain
/// pointer writes instead of an `Arc` refcount round-trip — that entry
/// point runs at every untraced instruction boundary, where two atomic
/// RMWs per attempt dominate the whole campaign.
#[derive(Debug, Default, Clone)]
struct BlockCache(Option<Arc<BlockTable>>);

impl PartialEq for BlockCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for BlockCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for BlockCache {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(BlockCache::default())
    }
}

/// Lifetime telemetry counters for the fast-replay engine. Behaviourally
/// inert: equality ignores them and they serialize as `null`.
#[derive(Debug, Default, Clone, Copy)]
struct FastStats {
    block_instructions: u64,
}

impl PartialEq for FastStats {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for FastStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for FastStats {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(FastStats::default())
    }
}

/// Dense-key log of every data-memory word written since
/// [`Machine::begin_dirty_log`] — the dirty set that makes the O(touched)
/// checkpoint restore of [`Machine::restore_delta_from`] sound. The bitmap
/// deduplicates; `keys` preserves insertion for a cheap sparse walk.
#[derive(Debug, Default)]
struct DirtyLog {
    bitmap: [u64; mem::NUM_DATA_WORDS / 64],
    keys: Vec<u32>,
}

impl DirtyLog {
    #[inline]
    fn insert(&mut self, key: usize) {
        let (w, b) = (key / 64, key % 64);
        if self.bitmap[w] & (1 << b) == 0 {
            self.bitmap[w] |= 1 << b;
            self.keys.push(key as u32);
        }
    }

    fn clear(&mut self) {
        self.bitmap = [0; mem::NUM_DATA_WORDS / 64];
        self.keys.clear();
    }
}

/// Behaviourally inert [`DirtyLog`] slot. Clones do not inherit the log
/// (mirrors [`TraceSlot`]): a clone's memory matches its source, so its
/// dirty set starts undefined until the owner calls `begin_dirty_log`.
#[derive(Debug, Default)]
struct DirtySlot(Option<Box<DirtyLog>>);

impl Clone for DirtySlot {
    fn clone(&self) -> Self {
        DirtySlot(None)
    }
}

impl PartialEq for DirtySlot {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for DirtySlot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for DirtySlot {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(DirtySlot::default())
    }
}

/// Number of host-writable input ports.
pub const NUM_IN_PORTS: usize = 4;
/// Number of host-readable output ports.
pub const NUM_OUT_PORTS: usize = 4;

/// Input port carrying the reference value `r`.
pub const PORT_R: u16 = 0;
/// Input port carrying the measured value `y`.
pub const PORT_Y: u16 = 1;
/// Output port carrying the actuator command `u_lim`.
pub const PORT_U: u16 = 2;

/// PSR flag bit: last compare was equal.
pub const PSR_EQ: u8 = 0b01;
/// PSR flag bit: last compare was less-than.
pub const PSR_LT: u8 = 0b10;

/// Default guarded stack window: the top 1 KiB of the stack segment.
pub const DEFAULT_STACK_LO: u32 = mem::STACK_BASE + mem::STACK_SIZE - 0x400;
/// One past the last valid stack address.
pub const DEFAULT_STACK_HI: u32 = mem::STACK_BASE + mem::STACK_SIZE;

/// The prefetched-instruction latch (IF/ID pipeline register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct FetchLatch {
    pub word: u32,
    pub pc: u32,
    pub valid: bool,
}

/// Last consumed operand pair (ID/EX pipeline register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct OperandLatch {
    pub a: u32,
    pub b: u32,
}

/// Last committed result (EX/WB pipeline register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct ResultLatch {
    pub value: u32,
    pub rd: u8,
    pub we: bool,
}

/// Last store accepted by the memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct StoreBuffer {
    pub addr: u32,
    pub data: u32,
    pub valid: bool,
}

/// Last word transferred by a cache-line fill, with its parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub(crate) struct FillBuffer {
    pub addr: u32,
    pub data: u32,
    pub parity: bool,
    pub valid: bool,
}

/// The outcome of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An ordinary instruction completed.
    Normal,
    /// A `yield` executed: one workload iteration finished; the host should
    /// exchange I/O data now.
    Yield,
}

/// How a fast-replay block attempt ended (see `Machine::run_block`).
enum BlockExit {
    /// At least one instruction retired; re-evaluate from the new state.
    Progress,
    /// Preconditions not met — execute the scalar step instead.
    Fallback,
    /// An EDM fired mid-run; the machine froze exactly as scalar would.
    Trapped(Trap),
    /// A `yield` retired (with the next instruction prefetched, as the
    /// scalar path leaves it); the run returns to the harness.
    Yielded,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// A `yield` executed.
    Yield,
    /// An error detection mechanism fired; the machine is frozen.
    Trap(Trap),
    /// The instruction budget was exhausted.
    Budget,
}

/// The Thor-like processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    pub(crate) regs: [u32; isa::NUM_REGS],
    pub(crate) pc: u32,
    pub(crate) psr: u8,
    pub(crate) sig: u16,
    pub(crate) stack_lo: u32,
    pub(crate) stack_hi: u32,
    pub(crate) epc: u32,
    pub(crate) cause: u8,
    pub(crate) save: [u32; 2],
    pub(crate) fetch: FetchLatch,
    pub(crate) idex: OperandLatch,
    pub(crate) exwb: ResultLatch,
    pub(crate) cache: DataCache,
    pub(crate) sbuf: StoreBuffer,
    pub(crate) fbuf: FillBuffer,
    pub(crate) edac_syndrome: u8,
    pub(crate) ports_out: [u32; NUM_OUT_PORTS],
    ports_in: [u32; NUM_IN_PORTS],
    mem: Memory,
    instr_count: u64,
    trapped: Option<Trap>,
    /// Parity protection over the data cache (the custom-hardware
    /// alternative the paper rejects on cost grounds; modelled for the
    /// ablation study). When enabled, any cache state that was not written
    /// by the cache controller itself is detected on the next access.
    parity_cache: bool,
    shadow: [crate::cache::CacheLine; crate::cache::NUM_LINES],
    /// Optional golden-run access-trace recorder (see [`crate::access`]).
    atrace: TraceSlot,
    /// Optional golden-run EDM-visibility recorder (see [`crate::vis`]).
    vtrace: VisSlot,
    /// Validated per-ROM-slot decode memo.
    decode_memo: DecodeMemo,
    /// Predecoded straight-line runs for the fast-replay engine.
    block_cache: BlockCache,
    /// Fast-replay telemetry counters.
    fast_stats: FastStats,
    /// Dirty-word log backing the delta checkpoint restore.
    dirty: DirtySlot,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with zeroed state and empty memory.
    #[must_use]
    pub fn new() -> Self {
        Machine {
            regs: [0; isa::NUM_REGS],
            pc: mem::ROM_BASE,
            psr: 0,
            sig: 0,
            stack_lo: DEFAULT_STACK_LO,
            stack_hi: DEFAULT_STACK_HI,
            epc: 0,
            cause: 0,
            save: [0; 2],
            fetch: FetchLatch::default(),
            idex: OperandLatch::default(),
            exwb: ResultLatch::default(),
            cache: DataCache::new(),
            sbuf: StoreBuffer::default(),
            fbuf: FillBuffer::default(),
            edac_syndrome: 0,
            ports_out: [0; NUM_OUT_PORTS],
            ports_in: [0; NUM_IN_PORTS],
            mem: Memory::new(),
            instr_count: 0,
            trapped: None,
            parity_cache: false,
            shadow: [crate::cache::CacheLine::default(); crate::cache::NUM_LINES],
            atrace: TraceSlot::default(),
            vtrace: VisSlot::default(),
            decode_memo: DecodeMemo::default(),
            block_cache: BlockCache::default(),
            fast_stats: FastStats::default(),
            dirty: DirtySlot::default(),
        }
    }

    /// Starts recording an access trace (golden runs only). Any previous
    /// trace is discarded. Clones taken while tracing do not trace.
    pub fn start_access_trace(&mut self) {
        self.atrace.0 = Some(Box::new(AccessTrace::new()));
    }

    /// Stops tracing and returns the recorded trace, if one was started.
    pub fn take_access_trace(&mut self) -> Option<AccessTrace> {
        self.atrace.0.take().map(|b| *b)
    }

    /// Starts recording an EDM-visibility trace (golden runs only). Any
    /// previous trace is discarded. Clones taken while tracing do not
    /// trace.
    pub fn start_vis_trace(&mut self) {
        self.vtrace.0 = Some(Box::new(VisTrace::new()));
    }

    /// Stops visibility tracing and returns the recorded trace, if one
    /// was started.
    pub fn take_vis_trace(&mut self) -> Option<VisTrace> {
        self.vtrace.0.take().map(|b| *b)
    }

    /// Records the harness's read of an output port at a `yield` boundary
    /// (the closed-loop driver samples the actuator command there). The
    /// read belongs to the instruction that just yielded — `instr_count`
    /// has already advanced past it — so a fault injected exactly at the
    /// current boundary is *not* visible to it.
    pub fn trace_harness_port_read(&mut self, port: u16) {
        let at = self.instr_count.saturating_sub(1);
        if let Some(t) = self.atrace.0.as_mut() {
            t.record(TraceUnit::PortOut(port as u8), at, AccessKind::Read);
        }
    }

    #[inline]
    fn trace(&mut self, unit: TraceUnit, kind: AccessKind) {
        if let Some(t) = self.atrace.0.as_mut() {
            t.record(unit, self.instr_count, kind);
        }
    }

    #[inline]
    fn vis(&mut self, unit: VisUnit, kind: AccessKind) {
        if let Some(v) = self.vtrace.0.as_mut() {
            v.record(unit, self.instr_count, kind);
        }
    }

    #[inline]
    fn vis_shift(&mut self) {
        if let Some(v) = self.vtrace.0.as_mut() {
            v.record_shift(self.instr_count);
        }
    }

    /// Enables or disables parity protection of the data cache. With
    /// parity on, a scan-chain bit-flip anywhere in a cache line (data,
    /// tag, or flags) raises DATA ERROR at the next access to that line —
    /// the custom-hardware alternative discussed in Section 4.3 of the
    /// paper.
    pub fn set_cache_parity(&mut self, enabled: bool) {
        self.parity_cache = enabled;
    }

    /// Resets all CPU and memory state and loads `program` (code into ROM,
    /// initialised data into RAM), leaving the PC at the entry point.
    pub fn load_program(&mut self, program: &crate::asm::Program) {
        *self = Machine::new();
        for (i, word) in program.code.iter().enumerate() {
            self.mem
                .load_rom_word(program.code_base + (i as u32) * 4, *word);
        }
        for &(addr, word) in &program.data {
            assert!(
                self.mem.poke(addr, word),
                "data word outside RAM: {addr:#x}"
            );
        }
        self.pc = program.entry;
        // ROM is immutable from here on, so decode the whole image once;
        // clones share the warm table through the memo's `Arc`.
        let mut table = vec![None; (mem::ROM_SIZE / 4) as usize];
        for (i, &word) in program.code.iter().enumerate() {
            let slot = ((program.code_base - mem::ROM_BASE) >> 2) as usize + i;
            table[slot] = isa::decode(word).map(|d| (word, d));
        }
        self.decode_memo = DecodeMemo(Arc::new(table));
        self.block_cache = BlockCache(Some(Arc::new(BlockTable::build(&self.mem))));
    }

    /// Enables or disables the predecoded fast-replay engine. Disabling
    /// clears the block table, so every instruction takes the scalar step
    /// path (the reference behaviour for the equivalence suite); enabling
    /// rebuilds the table from the current ROM image.
    pub fn set_fast_replay(&mut self, enabled: bool) {
        self.block_cache = if enabled {
            BlockCache(Some(Arc::new(BlockTable::build(&self.mem))))
        } else {
            BlockCache::default()
        };
    }

    /// Instructions retired through the predecoded block engine over this
    /// machine's lifetime (telemetry; clones inherit their source's count,
    /// so callers measure deltas around a run).
    #[must_use]
    pub fn block_instructions(&self) -> u64 {
        self.fast_stats.block_instructions
    }

    /// Sets an input port to a raw word.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn set_port(&mut self, port: u16, value: u32) {
        self.ports_in[port as usize] = value;
    }

    /// Sets an input port to the bit pattern of an `f32`.
    pub fn set_port_f32(&mut self, port: u16, value: f32) {
        self.set_port(port, value.to_bits());
    }

    /// Reads an output port as a raw word.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    #[must_use]
    pub fn port_out(&self, port: u16) -> u32 {
        self.ports_out[port as usize]
    }

    /// Reads an output port as an `f32`.
    #[must_use]
    pub fn port_out_f32(&self, port: u16) -> f32 {
        f32::from_bits(self.port_out(port))
    }

    /// Number of instructions executed (including a trapping one).
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// The pending trap, if an EDM has fired.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        self.trapped
    }

    /// Current program counter (next fetch address).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads a general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 16`.
    #[must_use]
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize]
    }

    /// The main memory (for test assertions and end-state comparison).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Host-side write of one data word (RAM or stack), bypassing the
    /// cache — the SWIFI-style memory fault-injection hook. Parity is
    /// recomputed, so this models a *value* fault, not an EDAC-detectable
    /// one. Returns `false` when `addr` is not a writable data word.
    pub fn poke_word(&mut self, addr: u32, word: u32) -> bool {
        let ok = self.mem.poke(addr, word);
        if ok {
            self.note_data_write(addr);
        }
        ok
    }

    /// Host-side patch of one ROM word (program loading, test harness).
    /// Forwards to [`Memory::load_rom_word`], which bumps the ROM version
    /// counter — any predecoded block table goes stale and fast replay
    /// falls back to the scalar path until the program is reloaded.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside ROM or unaligned.
    pub fn poke_rom_word(&mut self, addr: u32, word: u32) {
        self.mem.load_rom_word(addr, word);
    }

    /// Starts (or restarts) the dirty-word log: every subsequent write to
    /// data memory — cache write-backs and host pokes — records its dense
    /// word key, enabling [`Machine::restore_delta_from`] and
    /// [`Machine::state_equals_sparse`].
    pub fn begin_dirty_log(&mut self) {
        match self.dirty.0.as_mut() {
            Some(log) => log.clear(),
            None => self.dirty.0 = Some(Box::new(DirtyLog::default())),
        }
    }

    /// The dense data-word keys written since [`Machine::begin_dirty_log`],
    /// or `None` when no log is active.
    #[must_use]
    pub fn dirty_words(&self) -> Option<&[u32]> {
        self.dirty.0.as_deref().map(|l| l.keys.as_slice())
    }

    #[inline]
    fn note_data_write(&mut self, addr: u32) {
        if let Some(log) = self.dirty.0.as_mut() {
            if let Some(key) = mem::word_key(addr) {
                log.insert(key);
            }
        }
    }

    /// Dirty-delta checkpoint restore: makes `self` architecturally
    /// identical to `src` without a deep clone. The fixed-size CPU state
    /// (registers, latches, cache, shadow, ports) is copied wholesale;
    /// data memory is copied only where the two images can differ — the
    /// words `self` dirtied since its own [`Machine::begin_dirty_log`]
    /// plus `extra` (the golden run's write sets between the checkpoint
    /// `self` was last restored from and `src`, supplied by the caller who
    /// knows the checkpoint schedule). Without an active log, or when the
    /// combined set reaches the size of data memory, the whole data image
    /// is copied instead. The log restarts empty; traces are cleared (as
    /// on clone). Returns the number of data words copied.
    pub fn restore_delta_from(&mut self, src: &Machine, extra: &[Vec<u32>]) -> usize {
        let copied = match self.dirty.0.take() {
            Some(mut log) => {
                let total = log.keys.len() + extra.iter().map(Vec::len).sum::<usize>();
                let copied = if total >= mem::NUM_DATA_WORDS {
                    self.mem.copy_data_from(&src.mem);
                    mem::NUM_DATA_WORDS
                } else {
                    for &k in log.keys.iter().chain(extra.iter().flatten()) {
                        self.mem.copy_data_word_from(&src.mem, k as usize);
                    }
                    total
                };
                log.clear();
                self.dirty.0 = Some(log);
                copied
            }
            None => {
                self.mem.copy_data_from(&src.mem);
                self.begin_dirty_log();
                mem::NUM_DATA_WORDS
            }
        };
        self.regs = src.regs;
        self.pc = src.pc;
        self.psr = src.psr;
        self.sig = src.sig;
        self.stack_lo = src.stack_lo;
        self.stack_hi = src.stack_hi;
        self.epc = src.epc;
        self.cause = src.cause;
        self.save = src.save;
        self.fetch = src.fetch;
        self.idex = src.idex;
        self.exwb = src.exwb;
        self.cache = src.cache.clone();
        self.sbuf = src.sbuf;
        self.fbuf = src.fbuf;
        self.edac_syndrome = src.edac_syndrome;
        self.ports_out = src.ports_out;
        self.ports_in = src.ports_in;
        self.instr_count = src.instr_count;
        self.trapped = src.trapped;
        self.parity_cache = src.parity_cache;
        self.shadow = src.shadow;
        self.atrace = TraceSlot::default();
        self.vtrace = VisSlot::default();
        self.decode_memo = src.decode_memo.clone();
        self.block_cache = src.block_cache.clone();
        debug_assert!(
            self.state_equals(src),
            "dirty-delta restore must reproduce the checkpoint exactly"
        );
        copied
    }

    /// Sparse architectural equality for the convergence check: compares
    /// every CPU field exactly as [`Machine::state_equals`] does, but walks
    /// data memory only over this machine's dirty-log keys plus `extra`
    /// (the golden run's writes since the checkpoint this machine was
    /// restored from) instead of the full image — sound because ROM is
    /// immutable at run time and RAM/stack can differ only where one side
    /// wrote. Returns `None` when no dirty log is active — and also once
    /// the combined key set covers more than half of data memory, where a
    /// random-access key walk loses to the full comparison's sequential
    /// sweep; the caller must then fall back to the full comparison.
    #[must_use]
    pub fn state_equals_sparse(&self, other: &Machine, extra: &[u32]) -> Option<bool> {
        let log = self.dirty.0.as_deref()?;
        if log.keys.len() + extra.len() > mem::NUM_DATA_WORDS / 2 {
            return None;
        }
        let cpu = self.regs == other.regs
            && self.pc == other.pc
            && self.psr == other.psr
            && self.sig == other.sig
            && self.stack_lo == other.stack_lo
            && self.stack_hi == other.stack_hi
            && self.epc == other.epc
            && self.cause == other.cause
            && self.save == other.save
            && self.fetch == other.fetch
            && self.idex == other.idex
            && self.exwb == other.exwb
            && self.cache == other.cache
            && self.sbuf == other.sbuf
            && self.fbuf == other.fbuf
            && self.edac_syndrome == other.edac_syndrome
            && self.ports_out == other.ports_out
            && self.ports_in == other.ports_in
            && self.parity_cache == other.parity_cache
            && self.shadow == other.shadow;
        if !cpu {
            return Some(false);
        }
        Some(
            log.keys
                .iter()
                .chain(extra)
                .all(|&k| self.mem.data_word(k as usize) == other.mem.data_word(k as usize)),
        )
    }

    /// FNV-1a 64 digest of the architectural state: everything that
    /// determines future behaviour, *excluding* the instruction counter and
    /// the trap latch. Two machines with equal digests at an iteration
    /// boundary are *candidates* for having converged onto the same
    /// trajectory; confirm with [`Machine::state_equals`] before relying on
    /// it — the digest is a filter, not a proof.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_u32_slice(&self.regs);
        h.write_u32(self.pc);
        h.write_u8(self.psr);
        h.write_u32(u32::from(self.sig));
        h.write_u32(self.stack_lo);
        h.write_u32(self.stack_hi);
        h.write_u32(self.epc);
        h.write_u8(self.cause);
        h.write_u32_slice(&self.save);
        h.write_u32(self.fetch.word);
        h.write_u32(self.fetch.pc);
        h.write_bool(self.fetch.valid);
        h.write_u32(self.idex.a);
        h.write_u32(self.idex.b);
        h.write_u32(self.exwb.value);
        h.write_u8(self.exwb.rd);
        h.write_bool(self.exwb.we);
        for index in 0..crate::cache::NUM_LINES {
            for line in [self.cache.line(index), &self.shadow[index]] {
                h.write_u32(line.tag);
                h.write_bool(line.valid);
                h.write_bool(line.dirty);
                h.write_bytes(&line.data);
            }
        }
        h.write_u32(self.sbuf.addr);
        h.write_u32(self.sbuf.data);
        h.write_bool(self.sbuf.valid);
        h.write_u32(self.fbuf.addr);
        h.write_u32(self.fbuf.data);
        h.write_bool(self.fbuf.parity);
        h.write_bool(self.fbuf.valid);
        h.write_u8(self.edac_syndrome);
        h.write_u32_slice(&self.ports_out);
        h.write_u32_slice(&self.ports_in);
        h.write_bool(self.parity_cache);
        self.mem.digest_into(&mut h);
        h.finish()
    }

    /// Exact architectural equality, excluding only the instruction counter
    /// and the trap latch. When this holds at an iteration boundary between
    /// a faulty machine and the golden machine, determinism guarantees the
    /// two execute bit-identically from that point on (ROM is immutable, so
    /// full memory equality — checked here — covers the entire reachable
    /// state).
    #[must_use]
    pub fn state_equals(&self, other: &Machine) -> bool {
        self.regs == other.regs
            && self.pc == other.pc
            && self.psr == other.psr
            && self.sig == other.sig
            && self.stack_lo == other.stack_lo
            && self.stack_hi == other.stack_hi
            && self.epc == other.epc
            && self.cause == other.cause
            && self.save == other.save
            && self.fetch == other.fetch
            && self.idex == other.idex
            && self.exwb == other.exwb
            && self.cache == other.cache
            && self.sbuf == other.sbuf
            && self.fbuf == other.fbuf
            && self.edac_syndrome == other.edac_syndrome
            && self.ports_out == other.ports_out
            && self.ports_in == other.ports_in
            && self.parity_cache == other.parity_cache
            && self.shadow == other.shadow
            && self.mem == other.mem
    }

    /// Equality restricted to the given trace units — the dirty-set
    /// divergence check of the lockstep batch engine. Where a replica is
    /// known (from the golden access trace) to differ from golden *at most*
    /// on its delta units, comparing those units alone replaces the full
    /// `state_equals` walk over every register, cache line, and memory
    /// word. This is **not** architectural equality: units outside `units`
    /// are not examined.
    #[must_use]
    pub fn state_equals_on(&self, other: &Machine, units: &[TraceUnit]) -> bool {
        units.iter().all(|unit| match *unit {
            TraceUnit::Reg(r) => self.regs[r as usize & 0xF] == other.regs[r as usize & 0xF],
            TraceUnit::CacheWord { line, word } => {
                let range = word * 4..word * 4 + 4;
                self.cache.line(line).data[range.clone()] == other.cache.line(line).data[range]
            }
            TraceUnit::PortOut(p) => self.ports_out[p as usize] == other.ports_out[p as usize],
            TraceUnit::Save(i) => self.save[i as usize] == other.save[i as usize],
            TraceUnit::MemWord(key) => match mem::key_addr(key) {
                Some(addr) => self.mem.read_word(addr) == other.mem.read_word(addr),
                None => true,
            },
        })
    }

    /// Host-side write of a data word (campaign initialisation).
    pub fn poke_data(&mut self, addr: u32, word: u32) -> bool {
        let ok = self.mem.poke(addr, word);
        if ok {
            self.note_data_write(addr);
        }
        ok
    }

    /// The address and word of the instruction about to execute (from the
    /// fetch latch when it is primed, else from memory at the PC). Used by
    /// the detail-mode tracer; a word of `0xFFFF_FFFF` is reported when the
    /// PC points at unfetchable memory.
    #[must_use]
    pub fn peek_next_instruction(&self) -> (u32, u32) {
        if self.fetch.valid {
            (self.fetch.pc, self.fetch.word)
        } else {
            (self.pc, self.mem.fetch(self.pc).unwrap_or(0xFFFF_FFFF))
        }
    }

    /// Reads a data word as the CPU would see it: from the cache when the
    /// address hits, otherwise from memory. Used by detail-mode logging.
    #[must_use]
    pub fn peek_data(&self, addr: u32) -> Option<u32> {
        if self.cache.hits(addr) {
            Some(self.cache.read_word(addr))
        } else {
            self.mem.read_word(addr).map(|(w, _)| w)
        }
    }

    /// Configures the guarded stack window (supervisor operation, performed
    /// by the host before the workload starts).
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both lie in the stack segment.
    pub fn set_stack_window(&mut self, lo: u32, hi: u32) {
        assert!(lo < hi, "empty stack window");
        assert_eq!(mem::region(lo), Region::Stack, "lo outside stack segment");
        assert_eq!(
            mem::region(hi - 4),
            Region::Stack,
            "hi outside stack segment"
        );
        self.stack_lo = lo;
        self.stack_hi = hi;
    }

    /// Executes at most `budget` instructions, returning early on a `yield`
    /// or a trap.
    pub fn run(&mut self, budget: u64) -> RunExit {
        // Monomorphise the step path on whether a trace (access or
        // visibility) is being recorded: the untraced interpreter (every
        // experiment) compiles with all trace hooks removed entirely.
        if self.tracing() {
            self.run_gen::<true>(budget)
        } else {
            self.run_gen::<false>(budget)
        }
    }

    fn run_gen<const TRACING: bool>(&mut self, budget: u64) -> RunExit {
        // Every successful scalar step and every replayed block advance
        // `instr_count` by exactly the number of instructions retired, so
        // a budget is just a stop position.
        let stop_at = self.instr_count.saturating_add(budget);
        self.run_until_gen::<TRACING>(stop_at)
    }

    /// Executes instructions until `instr_count` reaches `stop_at`,
    /// returning early on a `yield` or a trap. Used to position the machine
    /// at a fault-injection breakpoint.
    pub fn run_until(&mut self, stop_at: u64) -> RunExit {
        if self.tracing() {
            self.run_until_gen::<true>(stop_at)
        } else {
            self.run_until_gen::<false>(stop_at)
        }
    }

    fn run_until_gen<const TRACING: bool>(&mut self, stop_at: u64) -> RunExit {
        while self.instr_count < stop_at {
            if !TRACING {
                // Fast replay: retire a whole predecoded straight-line run
                // without per-instruction fetch/decode/latch bookkeeping.
                // Any precondition failure — trap pending, latch not
                // primed, scan-corrupted PC/latch, changed ROM, tracing —
                // falls through to the bit-identical scalar step.
                match self.run_block(stop_at) {
                    BlockExit::Progress => continue,
                    BlockExit::Trapped(trap) => return RunExit::Trap(trap),
                    BlockExit::Yielded => return RunExit::Yield,
                    BlockExit::Fallback => {}
                }
            }
            match self.step_gen::<TRACING>() {
                Ok(StepEvent::Normal) => {}
                Ok(StepEvent::Yield) => return RunExit::Yield,
                Err(trap) => return RunExit::Trap(trap),
            }
        }
        RunExit::Budget
    }

    /// Replays predecoded instructions, stopping at `stop_at`. Everything
    /// the table cannot prove equivalent to a scalar step — a
    /// scan-corrupted latch or PC, a fetch outside ROM, an undecodable or
    /// privileged word, a stale table — stops the replay where a scalar
    /// step can take over; any state this function leaves behind is one
    /// the scalar path would have produced at the same instruction
    /// boundary.
    fn run_block(&mut self, stop_at: u64) -> BlockExit {
        if self.trapped.is_some() {
            return BlockExit::Fallback;
        }
        // Move the table out for the duration of the replay — a pointer
        // move, not an `Arc` refcount round-trip, because this point is
        // reached at every untraced `run_until` — and put it back on every
        // exit.
        let Some(table) = self.block_cache.0.take() else {
            return BlockExit::Fallback;
        };
        let exit = self.run_block_inner(&table, stop_at);
        self.block_cache.0 = Some(table);
        exit
    }

    /// The table-driven interpreter loop: replays whole straight-line runs
    /// with the per-instruction fetch/decode/latch bookkeeping hoisted
    /// out, then executes each run's decodable terminator (branch, jump,
    /// call, return, `sig`, `yield`) from the same predecoded image,
    /// chaining across control transfers without returning to the scalar
    /// loop. Latch refills after a transfer reproduce `fill_latch`
    /// bit-for-bit (the ROM-version guard proves the table mirrors live
    /// ROM), so every intermediate state equals the scalar path's.
    fn run_block_inner(&mut self, table: &BlockTable, stop_at: u64) -> BlockExit {
        // Staleness guard: any host ROM write since the table was built
        // invalidates every block (see [`BlockTable`]). Runtime stores
        // cannot reach ROM, so this is a never-taken branch mid-campaign.
        if table.rom_version != self.mem.rom_version() {
            return BlockExit::Fallback;
        }
        let mut progressed = false;
        loop {
            // Establish a primed latch the table can vouch for. An invalid
            // latch (after a control transfer) is refilled exactly as the
            // next scalar step's `fill_latch` would; a primed latch must
            // hold the predecoded word with `pc` one word ahead — anything
            // else (a scan flip landed) is the scalar path's business.
            let ipc = if self.fetch.valid {
                self.fetch.pc
            } else {
                self.pc
            };
            if !(mem::ROM_BASE..mem::ROM_BASE + mem::ROM_SIZE).contains(&ipc)
                || !ipc.is_multiple_of(4)
            {
                break;
            }
            let mut slot = ((ipc - mem::ROM_BASE) >> 2) as usize;
            if self.fetch.valid {
                if self.pc != ipc.wrapping_add(4) || table.words.get(slot) != Some(&self.fetch.word)
                {
                    break;
                }
            } else {
                let Some(&word) = table.words.get(slot) else {
                    break;
                };
                self.fetch = FetchLatch {
                    word,
                    pc: ipc,
                    valid: true,
                };
                self.pc = ipc.wrapping_add(4);
            }
            let mut ipc0 = ipc;
            // Replay the straight-line run starting here, if any. Mirrors
            // `step_inner` with the latch bookkeeping hoisted out of the
            // loop: the signature accumulates before execution (a trapping
            // word still hashes in), and straight-line ops never transfer
            // control or yield.
            let len = u64::from(table.run_len[slot]);
            if len > 0 {
                let n = len.min(stop_at - self.instr_count) as usize;
                let base = self.instr_count;
                let run = table.words[slot..slot + n]
                    .iter()
                    .zip(&table.decoded[slot..slot + n]);
                for (i, (&word, d)) in run.enumerate() {
                    let d = d.as_ref().expect("straight-line runs are fully decoded");
                    let ipc = ipc0 + (i as u32) * 4;
                    self.sig = isa::signature_step(self.sig, word);
                    let mut event = StepEvent::Normal;
                    let mut transferred = false;
                    if let Err(mechanism) =
                        self.execute::<false>(d, ipc, &mut event, &mut transferred)
                    {
                        // Re-materialise the latch state the scalar path
                        // would hold at this instruction, then freeze as
                        // `step_gen` does.
                        self.fetch = FetchLatch {
                            word,
                            pc: ipc,
                            valid: false,
                        };
                        self.pc = ipc.wrapping_add(4);
                        let trap = Trap {
                            mechanism,
                            at_instruction: base + i as u64,
                            pc: ipc,
                        };
                        self.instr_count = base + i as u64 + 1;
                        self.trapped = Some(trap);
                        self.epc = ipc;
                        self.cause =
                            Edm::ALL.iter().position(|m| *m == mechanism).unwrap_or(0) as u8;
                        self.fast_stats.block_instructions += i as u64 + 1;
                        return BlockExit::Trapped(trap);
                    }
                    debug_assert!(
                        !transferred && event == StepEvent::Normal,
                        "straight-line ops never transfer or yield"
                    );
                }
                // The run exits with the next instruction prefetched,
                // exactly as the scalar path's end-of-step prefetch would
                // leave it (a run never includes the last ROM slot, so
                // `slot + n` is in range).
                self.fetch = FetchLatch {
                    word: table.words[slot + n],
                    pc: ipc0 + (n as u32) * 4,
                    valid: true,
                };
                self.pc = self.fetch.pc.wrapping_add(4);
                self.instr_count = base + n as u64;
                self.fast_stats.block_instructions += n as u64;
                progressed = true;
                if (n as u64) < len || self.instr_count >= stop_at {
                    return BlockExit::Progress;
                }
                slot += n;
                ipc0 = ipc0.wrapping_add((n as u32) * 4);
            }
            // The latch now holds this run's terminator (`run_len == 0`
            // here): execute it from the predecoded image, mirroring
            // `step_inner` — consume the latch, accumulate the signature
            // (except for `sig`, which samples it), execute, prefetch when
            // control did not transfer.
            let Some(d) = table.decoded[slot] else {
                break; // undecodable word: the scalar step raises the EDM
            };
            if d.op.is_privileged() {
                break; // ditto — rejected before execute on the scalar path
            }
            let word = table.words[slot];
            self.fetch.valid = false;
            if d.op != Opcode::Sig {
                self.sig = isa::signature_step(self.sig, word);
            }
            let mut event = StepEvent::Normal;
            let mut transferred = false;
            if let Err(mechanism) = self.execute::<false>(&d, ipc0, &mut event, &mut transferred) {
                // The latch was consumed and `execute` errors before
                // mutating the PC, so the state already matches the scalar
                // error path; freeze as `step_gen` does.
                let trap = Trap {
                    mechanism,
                    at_instruction: self.instr_count,
                    pc: ipc0,
                };
                self.instr_count += 1;
                self.trapped = Some(trap);
                self.epc = ipc0;
                self.cause = Edm::ALL.iter().position(|m| *m == mechanism).unwrap_or(0) as u8;
                self.fast_stats.block_instructions += 1;
                return BlockExit::Trapped(trap);
            }
            self.instr_count += 1;
            self.fast_stats.block_instructions += 1;
            progressed = true;
            if !transferred {
                // `try_prefetch` equivalent: prime the latch from the
                // table when the next slot exists; past the end of ROM the
                // scalar prefetch fails silently and leaves the latch
                // invalid, which is already our state.
                if let Some(&w) = table.words.get(slot + 1) {
                    self.fetch = FetchLatch {
                        word: w,
                        pc: self.pc,
                        valid: true,
                    };
                    self.pc = self.pc.wrapping_add(4);
                }
            }
            if event == StepEvent::Yield {
                return BlockExit::Yielded;
            }
            if self.instr_count >= stop_at {
                return BlockExit::Progress;
            }
        }
        if progressed {
            BlockExit::Progress
        } else {
            BlockExit::Fallback
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the trap when an error detection mechanism fires; the machine
    /// freezes and every subsequent call returns the same trap.
    pub fn step(&mut self) -> Result<StepEvent, Trap> {
        if self.tracing() {
            self.step_gen::<true>()
        } else {
            self.step_gen::<false>()
        }
    }

    #[inline]
    fn tracing(&self) -> bool {
        self.atrace.0.is_some() || self.vtrace.0.is_some()
    }

    fn step_gen<const TRACING: bool>(&mut self) -> Result<StepEvent, Trap> {
        if let Some(t) = self.trapped {
            return Err(t);
        }
        let idx = self.instr_count;
        match self.step_inner::<TRACING>() {
            Ok(ev) => {
                self.instr_count += 1;
                Ok(ev)
            }
            Err((mechanism, pc)) => {
                let trap = Trap {
                    mechanism,
                    at_instruction: idx,
                    pc,
                };
                if TRACING {
                    self.vis(VisUnit::EpcCause, AccessKind::Write);
                }
                self.instr_count += 1;
                self.trapped = Some(trap);
                self.epc = pc;
                self.cause = Edm::ALL.iter().position(|m| *m == mechanism).unwrap_or(0) as u8;
                Err(trap)
            }
        }
    }

    fn step_inner<const TRACING: bool>(&mut self) -> Result<StepEvent, (Edm, u32)> {
        // Consume the prefetched instruction (fetch now if the latch was
        // invalidated by a control transfer or a failed prefetch).
        if !self.fetch.valid {
            self.fill_latch::<TRACING>().map_err(|m| (m, self.pc))?;
        }
        if TRACING {
            self.vis(VisUnit::FetchWord, AccessKind::Read);
            self.vis(VisUnit::FetchPc, AccessKind::Read);
        }
        let word = self.fetch.word;
        let ipc = self.fetch.pc;
        self.fetch.valid = false;

        let d = self
            .decode_cached(word, ipc)
            .ok_or((Edm::InstructionError, ipc))?;
        if d.op.is_privileged() {
            return Err((Edm::InstructionError, ipc));
        }

        // The signature monitor hashes every executed word except the check
        // instruction itself (mirrors the assembler's static accumulation).
        if d.op != Opcode::Sig {
            self.sig = isa::signature_step(self.sig, word);
        }

        let mut event = StepEvent::Normal;
        let mut transferred = false;
        self.execute::<TRACING>(&d, ipc, &mut event, &mut transferred)
            .map_err(|m| (m, ipc))?;

        if !transferred {
            self.try_prefetch::<TRACING>();
        }
        Ok(event)
    }

    #[inline(always)]
    fn execute<const TRACING: bool>(
        &mut self,
        d: &Decoded,
        ipc: u32,
        event: &mut StepEvent,
        transferred: &mut bool,
    ) -> Result<(), Edm> {
        use Opcode::*;
        match d.op {
            Nop => {}
            Yield => *event = StepEvent::Yield,
            Halt | Setsb => unreachable!("privileged ops rejected in decode"),
            Sig => {
                // The compare samples the signature register; on success
                // it is zeroed (a deposit derived from the compare — the
                // preceding Read keeps a flipped signature live here).
                if TRACING {
                    self.vis(VisUnit::Sig, AccessKind::Read);
                }
                if self.sig != d.uimm16 as u16 {
                    return Err(Edm::ControlFlowError);
                }
                if TRACING {
                    self.vis(VisUnit::Sig, AccessKind::Write);
                }
                self.sig = 0;
            }
            Lui => self.write_reg::<TRACING>(d.rd, d.uimm16 << 16),
            Ori => {
                let a = self.read_reg::<TRACING>(d.ra);
                self.write_reg::<TRACING>(d.rd, a | d.uimm16);
            }
            Addi => {
                let a = self.read_reg::<TRACING>(d.ra) as i32;
                let v = a.checked_add(d.imm16).ok_or(Edm::OverflowCheck)?;
                self.write_reg::<TRACING>(d.rd, v as u32);
            }
            Ld => {
                let addr = self.read_reg::<TRACING>(d.ra).wrapping_add(d.imm16 as u32);
                let v = self.data_access::<TRACING>(addr, None)?;
                self.write_reg::<TRACING>(d.rd, v);
            }
            St => {
                let addr = self.read_reg::<TRACING>(d.ra).wrapping_add(d.imm16 as u32);
                let v = self.read_reg::<TRACING>(d.rd);
                self.data_access::<TRACING>(addr, Some(v))?;
            }
            Add | Sub | Mul => {
                let a = self.read_reg::<TRACING>(d.ra) as i32;
                let b = self.read_reg::<TRACING>(d.rb) as i32;
                let v = match d.op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    _ => a.checked_mul(b),
                }
                .ok_or(Edm::OverflowCheck)?;
                self.write_reg::<TRACING>(d.rd, v as u32);
            }
            Div => {
                let a = self.read_reg::<TRACING>(d.ra) as i32;
                let b = self.read_reg::<TRACING>(d.rb) as i32;
                if b == 0 {
                    return Err(Edm::DivisionCheck);
                }
                let v = a.checked_div(b).ok_or(Edm::OverflowCheck)?;
                self.write_reg::<TRACING>(d.rd, v as u32);
            }
            And | Or | Xor | Shl | Shr => {
                let a = self.read_reg::<TRACING>(d.ra);
                let b = self.read_reg::<TRACING>(d.rb);
                let v = match d.op {
                    And => a & b,
                    Or => a | b,
                    Xor => a ^ b,
                    Shl => a.wrapping_shl(b & 31),
                    _ => a.wrapping_shr(b & 31),
                };
                self.write_reg::<TRACING>(d.rd, v);
            }
            Fadd | Fsub | Fmul | Fdiv => {
                let a = f32::from_bits(self.read_reg::<TRACING>(d.ra));
                let b = f32::from_bits(self.read_reg::<TRACING>(d.rb));
                let v = self.float_binop(d.op, a, b)?;
                self.write_reg::<TRACING>(d.rd, v.to_bits());
            }
            Fcmp => {
                let a = f32::from_bits(self.read_reg::<TRACING>(d.ra));
                let b = f32::from_bits(self.read_reg::<TRACING>(d.rb));
                if a.is_nan() || b.is_nan() {
                    return Err(Edm::IllegalOperation);
                }
                self.set_flags::<TRACING>(a == b, a < b);
            }
            Cmp => {
                let a = self.read_reg::<TRACING>(d.ra) as i32;
                let b = self.read_reg::<TRACING>(d.rb) as i32;
                self.set_flags::<TRACING>(a == b, a < b);
            }
            Beq | Bne | Blt | Bge | Bgt | Ble => {
                // Each condition samples exactly the flag bits it
                // consults: EQ for beq/bne, LT for blt/bge, both for
                // bgt/ble. A flip in an unconsulted PSR bit stays
                // invisible to this branch.
                if TRACING {
                    if matches!(d.op, Beq | Bne | Bgt | Ble) {
                        self.vis(VisUnit::Psr(0), AccessKind::Read);
                    }
                    if matches!(d.op, Blt | Bge | Bgt | Ble) {
                        self.vis(VisUnit::Psr(1), AccessKind::Read);
                    }
                }
                let eq = self.psr & PSR_EQ != 0;
                let lt = self.psr & PSR_LT != 0;
                let taken = match d.op {
                    Beq => eq,
                    Bne => !eq,
                    Blt => lt,
                    Bge => !lt,
                    Bgt => !lt && !eq,
                    _ => lt || eq,
                };
                if taken {
                    let target = ipc
                        .wrapping_add(4)
                        .wrapping_add((d.imm16 as u32).wrapping_mul(4));
                    self.control_transfer::<TRACING>(target)?;
                    *transferred = true;
                }
            }
            Jmp => {
                self.control_transfer::<TRACING>(d.imm22.wrapping_mul(4))?;
                *transferred = true;
            }
            Call => {
                self.write_reg::<TRACING>(isa::REG_LR, ipc.wrapping_add(4));
                self.control_transfer::<TRACING>(d.imm22.wrapping_mul(4))?;
                *transferred = true;
            }
            Ret => {
                let target = self.read_reg::<TRACING>(isa::REG_LR);
                self.control_transfer::<TRACING>(target)?;
                *transferred = true;
            }
            In => {
                let port = d.uimm16 as usize;
                if port >= NUM_IN_PORTS {
                    return Err(Edm::AddressError);
                }
                self.write_reg::<TRACING>(d.rd, self.ports_in[port]);
            }
            Out => {
                let port = d.uimm16 as usize;
                if port >= NUM_OUT_PORTS {
                    return Err(Edm::AddressError);
                }
                let v = self.read_reg::<TRACING>(d.rd);
                if TRACING {
                    self.trace(TraceUnit::PortOut(port as u8), AccessKind::Write);
                }
                self.ports_out[port] = v;
            }
            Chk => {
                let v = f32::from_bits(self.read_reg::<TRACING>(d.rd));
                let lo = f32::from_bits(self.read_reg::<TRACING>(d.ra));
                let hi = f32::from_bits(self.read_reg::<TRACING>(d.rb));
                if v.is_nan() || lo.is_nan() || hi.is_nan() || v < lo || v > hi {
                    return Err(Edm::ConstraintError);
                }
            }
            Itof => {
                let a = self.read_reg::<TRACING>(d.ra) as i32;
                self.write_reg::<TRACING>(d.rd, (a as f32).to_bits());
            }
            Ftoi => {
                let a = f32::from_bits(self.read_reg::<TRACING>(d.ra));
                if a.is_nan() || !(-2147483648.0..2147483648.0).contains(&a) {
                    return Err(Edm::OverflowCheck);
                }
                self.write_reg::<TRACING>(d.rd, (a as i32) as u32);
            }
            Mov => {
                let a = self.read_reg::<TRACING>(d.ra);
                self.write_reg::<TRACING>(d.rd, a);
            }
        }
        Ok(())
    }

    fn float_binop(&mut self, op: Opcode, a: f32, b: f32) -> Result<f32, Edm> {
        // NaN and infinity both raise ILLEGAL OPERATION, so the two
        // classifications fuse into one finiteness test per operand.
        if !a.is_finite() || !b.is_finite() {
            return Err(Edm::IllegalOperation);
        }
        if op == Opcode::Fdiv && b == 0.0 {
            return Err(Edm::DivisionCheck);
        }
        let r = match op {
            Opcode::Fadd => a + b,
            Opcode::Fsub => a - b,
            Opcode::Fmul => a * b,
            Opcode::Fdiv => a / b,
            _ => unreachable!("not a float binop"),
        };
        // Non-finite results (overflow to ±inf; NaN is impossible from
        // finite operands with the zero-divisor case already rejected)
        // raise OVERFLOW CHECK; subnormals — nonzero by definition —
        // raise UNDERFLOW CHECK.
        if !r.is_finite() {
            return Err(Edm::OverflowCheck);
        }
        if r.is_subnormal() {
            return Err(Edm::UnderflowCheck);
        }
        Ok(r)
    }

    fn set_flags<const TRACING: bool>(&mut self, eq: bool, lt: bool) {
        // Both condition flags are deposited full-width from clean
        // compare inputs — the kill event for pending EQ/LT flips.
        if TRACING {
            self.vis(VisUnit::Psr(0), AccessKind::Write);
            self.vis(VisUnit::Psr(1), AccessKind::Write);
        }
        self.psr &= !(PSR_EQ | PSR_LT);
        if eq {
            self.psr |= PSR_EQ;
        }
        if lt {
            self.psr |= PSR_LT;
        }
    }

    /// Decodes through the per-ROM-slot memo. A memo hit is honoured only
    /// when the memoized word equals the word actually being executed, so
    /// the fast path is bit-identical to calling [`isa::decode`] directly.
    fn decode_cached(&mut self, word: u32, ipc: u32) -> Option<Decoded> {
        let slot = (mem::ROM_BASE..mem::ROM_BASE + mem::ROM_SIZE)
            .contains(&ipc)
            .then(|| ((ipc - mem::ROM_BASE) >> 2) as usize);
        if let Some(s) = slot {
            if let Some(Some((w, d))) = self.decode_memo.0.get(s) {
                if *w == word {
                    return Some(*d);
                }
            }
        }
        let d = isa::decode(word)?;
        if let Some(s) = slot {
            // Miss on a ROM slot: the image changed after load (host poke,
            // deserialized machine) or a scan flip corrupted the fetched
            // word. Re-warm only a table this machine owns outright — a
            // shared table would need a full copy-on-write clone per miss,
            // and the memo is a pure cache, so skipping the store is
            // always sound (the next miss just decodes again).
            if let Some(table) = Arc::get_mut(&mut self.decode_memo.0) {
                if table.is_empty() {
                    *table = vec![None; (mem::ROM_SIZE / 4) as usize];
                }
                table[s] = Some((word, d));
            }
        }
        Some(d)
    }

    fn read_reg<const TRACING: bool>(&mut self, r: u8) -> u32 {
        if TRACING {
            self.trace(TraceUnit::Reg(r & 0xF), AccessKind::Read);
            // The operand latch shifts (a ← b, b ← value): record the
            // instant for the planner's value-level migration rule.
            self.vis_shift();
        }
        let v = self.regs[(r & 0xF) as usize];
        self.idex.a = self.idex.b;
        self.idex.b = v;
        v
    }

    fn write_reg<const TRACING: bool>(&mut self, r: u8, v: u32) {
        if TRACING {
            self.trace(TraceUnit::Reg(r & 0xF), AccessKind::Write);
            // The whole result latch (value, rd, we) is deposited from
            // clean inputs.
            self.vis(VisUnit::Exwb, AccessKind::Write);
        }
        self.exwb = ResultLatch {
            value: v,
            rd: r & 0xF,
            we: true,
        };
        self.regs[(r & 0xF) as usize] = v;
    }

    /// Validates a jump/call/return/branch target and redirects fetch.
    fn control_transfer<const TRACING: bool>(&mut self, target: u32) -> Result<(), Edm> {
        if mem::region(target) != Region::Rom || !target.is_multiple_of(4) {
            return Err(Edm::JumpError);
        }
        if TRACING {
            // Both deposits are value-independent of the old contents:
            // the PC is replaced by the (clean-input) target and the
            // signature register is zeroed unconditionally — the only
            // sound kill for signature flips.
            self.vis(VisUnit::Pc, AccessKind::Write);
            self.vis(VisUnit::Sig, AccessKind::Write);
        }
        self.pc = target;
        self.fetch.valid = false;
        // Entering a new basic block: the signature monitor restarts.
        self.sig = 0;
        Ok(())
    }

    fn fetch_fault(pc: u32) -> Edm {
        match mem::region(pc) {
            Region::Bus => Edm::BusError,
            Region::Null => Edm::AccessCheck,
            _ => Edm::AddressError,
        }
    }

    fn fill_latch<const TRACING: bool>(&mut self) -> Result<(), Edm> {
        if TRACING {
            // The fetch address samples the PC. The subsequent deposits
            // (latch refill, PC increment) happen at the same instant and
            // *after* the read in per-unit order, so a pending PC flip is
            // observed here, never killed — the increment derives from
            // the flipped value.
            self.vis(VisUnit::Pc, AccessKind::Read);
        }
        match self.mem.fetch(self.pc) {
            Some(word) => {
                if TRACING {
                    self.vis(VisUnit::FetchWord, AccessKind::Write);
                    self.vis(VisUnit::FetchPc, AccessKind::Write);
                    self.vis(VisUnit::Pc, AccessKind::Write);
                }
                self.fetch = FetchLatch {
                    word,
                    pc: self.pc,
                    valid: true,
                };
                self.pc = self.pc.wrapping_add(4);
                Ok(())
            }
            None => Err(Self::fetch_fault(self.pc)),
        }
    }

    /// Prefetch at the end of a straight-line instruction; on failure the
    /// latch stays invalid and the fault is raised when the instruction is
    /// actually needed.
    fn try_prefetch<const TRACING: bool>(&mut self) {
        let _ = self.fill_latch::<TRACING>();
    }

    fn data_access<const TRACING: bool>(
        &mut self,
        addr: u32,
        write: Option<u32>,
    ) -> Result<u32, Edm> {
        if !addr.is_multiple_of(4) {
            return Err(Edm::AddressError);
        }
        match mem::region(addr) {
            Region::Null => Err(Edm::AccessCheck),
            Region::Rom | Region::Unmapped => Err(Edm::AddressError),
            Region::Bus => Err(Edm::BusError),
            Region::Stack => {
                // The storage-error EDM samples both bound registers.
                if TRACING {
                    self.vis(VisUnit::StackLo, AccessKind::Read);
                    self.vis(VisUnit::StackHi, AccessKind::Read);
                }
                if addr < self.stack_lo || addr >= self.stack_hi {
                    return Err(Edm::StorageError);
                }
                self.cached_access::<TRACING>(addr, write)
            }
            Region::Ram => self.cached_access::<TRACING>(addr, write),
        }
    }

    fn cached_access<const TRACING: bool>(
        &mut self,
        addr: u32,
        write: Option<u32>,
    ) -> Result<u32, Edm> {
        if self.parity_cache {
            let idx = crate::cache::index_of(addr);
            if *self.cache.line(idx) != self.shadow[idx] {
                return Err(Edm::DataError);
            }
        }
        if !TRACING {
            // Untraced hot path: one combined tag-check-and-access per
            // hit; a miss takes the ordinary write-back/fill route and
            // retries (the fill guarantees the second attempt hits). End
            // state is identical to the traced path below minus traces.
            if let Some(w) = self.cache.access_hit(addr, write) {
                if write.is_some() {
                    self.sbuf = StoreBuffer {
                        addr,
                        data: w,
                        valid: true,
                    };
                    self.update_shadow(addr);
                }
                return Ok(w);
            }
            if let Some((wb_addr, data)) = self.cache.pending_writeback(addr) {
                self.write_back::<TRACING>(wb_addr, &data)?;
            }
            self.fill_line::<TRACING>(addr)?;
            let w = self
                .cache
                .access_hit(addr, write)
                .expect("line just filled");
            if write.is_some() {
                self.sbuf = StoreBuffer {
                    addr,
                    data: w,
                    valid: true,
                };
                self.update_shadow(addr);
            }
            return Ok(w);
        }
        if TRACING {
            // The hit check mirrors the consult short-circuit: the valid
            // flag is sampled on every access, the tag only while the
            // line is valid. A replica whose valid-flag flip changes the
            // short-circuit splits off at this very Read, so conditioning
            // the tag sample on the *golden* flag is sound.
            let idx = crate::cache::index_of(addr);
            self.vis(VisUnit::CacheValid(idx), AccessKind::Read);
            if self.cache.line(idx).valid {
                self.vis(VisUnit::CacheTag(idx), AccessKind::Read);
            }
        }
        if !self.cache.hits(addr) {
            if TRACING {
                // The eviction decision samples the dirty flag of a valid
                // victim (pending_writeback short-circuits on valid).
                let idx = crate::cache::index_of(addr);
                if self.cache.line(idx).valid {
                    self.vis(VisUnit::CacheDirty(idx), AccessKind::Read);
                }
            }
            if let Some((wb_addr, data)) = self.cache.pending_writeback(addr) {
                // Evicting a dirty victim observes its whole line.
                if TRACING {
                    let line = crate::cache::index_of(addr);
                    for word in 0..WORDS_PER_LINE {
                        self.trace(TraceUnit::CacheWord { line, word }, AccessKind::Read);
                    }
                }
                self.write_back::<TRACING>(wb_addr, &data)?;
            }
            self.fill_line::<TRACING>(addr)?;
        }
        let unit = TraceUnit::CacheWord {
            line: crate::cache::index_of(addr),
            word: crate::cache::word_of(addr),
        };
        match write {
            Some(w) => {
                if TRACING {
                    self.trace(unit, AccessKind::Write);
                    // A store deposits the whole store buffer and forces
                    // the line's dirty flag to 1 — both value-independent
                    // of the previous contents.
                    self.vis(VisUnit::Sbuf, AccessKind::Write);
                    self.vis(
                        VisUnit::CacheDirty(crate::cache::index_of(addr)),
                        AccessKind::Write,
                    );
                }
                self.sbuf = StoreBuffer {
                    addr,
                    data: w,
                    valid: true,
                };
                self.cache.write_word(addr, w);
                self.update_shadow(addr);
                Ok(w)
            }
            None => {
                if TRACING {
                    self.trace(unit, AccessKind::Read);
                }
                Ok(self.cache.read_word(addr))
            }
        }
    }

    /// Records the legitimate cache state for the parity model.
    fn update_shadow(&mut self, addr: u32) {
        if self.parity_cache {
            let idx = crate::cache::index_of(addr);
            self.shadow[idx] = *self.cache.line(idx);
        }
    }

    fn write_back<const TRACING: bool>(
        &mut self,
        wb_addr: u32,
        data: &[u8; LINE_BYTES],
    ) -> Result<(), Edm> {
        if !TRACING {
            // Untraced: one region resolution (inside `write_line` — a
            // line never straddles regions) and one contiguous key range
            // for the dirty log; the error cases fall through to the
            // region match below.
            let words = [
                u32::from_le_bytes(data[0..4].try_into().unwrap()),
                u32::from_le_bytes(data[4..8].try_into().unwrap()),
                u32::from_le_bytes(data[8..12].try_into().unwrap()),
                u32::from_le_bytes(data[12..16].try_into().unwrap()),
            ];
            if self.mem.write_line(wb_addr, &words) {
                if let Some(log) = self.dirty.0.as_mut() {
                    if let Some(key) = mem::word_key(wb_addr) {
                        for i in 0..4 {
                            log.insert(key + i);
                        }
                    }
                }
                return Ok(());
            }
        }
        match mem::region(wb_addr) {
            Region::Ram | Region::Stack => {
                debug_assert!(TRACING, "write_line covers untraced RAM/stack lines");
                for i in 0..4 {
                    let a = wb_addr + (i as u32) * 4;
                    let w = u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().unwrap());
                    if TRACING {
                        if let Some(key) = mem::word_key(a) {
                            self.trace(TraceUnit::MemWord(key), AccessKind::Write);
                        }
                    }
                    self.mem.write_word(a, w);
                    self.note_data_write(a);
                }
                Ok(())
            }
            Region::Null => Err(Edm::AccessCheck),
            Region::Bus => Err(Edm::BusError),
            Region::Rom | Region::Unmapped => Err(Edm::AddressError),
        }
    }

    fn fill_line<const TRACING: bool>(&mut self, addr: u32) -> Result<(), Edm> {
        let base = addr & !0xF;
        if !TRACING {
            return self.fill_line_untraced(base);
        }
        let mut data = [0u8; LINE_BYTES];
        for i in 0..4 {
            let a = base + (i as u32) * 4;
            if TRACING {
                if let Some(key) = mem::word_key(a) {
                    self.trace(TraceUnit::MemWord(key), AccessKind::Read);
                }
                // The EDAC check samples the syndrome register per word;
                // each word then deposits a whole fill buffer.
                self.vis(VisUnit::EdacSyndrome, AccessKind::Read);
            }
            let (w, parity_ok) = self.mem.read_word(a).ok_or(Edm::AddressError)?;
            if !parity_ok || self.edac_syndrome != 0 {
                return Err(Edm::DataError);
            }
            if TRACING {
                self.vis(VisUnit::Fbuf, AccessKind::Write);
            }
            self.fbuf = FillBuffer {
                addr: a,
                data: w,
                parity: mem::parity(w),
                valid: true,
            };
            data[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        if TRACING {
            let line = crate::cache::index_of(base);
            for word in 0..WORDS_PER_LINE {
                self.trace(TraceUnit::CacheWord { line, word }, AccessKind::Write);
            }
            // The fill deposits the line's tag, valid and dirty flags.
            self.vis(VisUnit::CacheTag(line), AccessKind::Write);
            self.vis(VisUnit::CacheValid(line), AccessKind::Write);
            self.vis(VisUnit::CacheDirty(line), AccessKind::Write);
        }
        self.cache.fill(base, data);
        self.update_shadow(base);
        Ok(())
    }

    /// Untraced line fill: reads the whole line with one region
    /// resolution, then reproduces the traced path's observable effects
    /// bit-for-bit. The per-word fill-buffer deposits of the traced loop
    /// collapse to the last one that would have happened before returning:
    /// on success the buffer holds word 3; on a parity failure at word `i`
    /// it holds word `i - 1` (words before the failure each deposited);
    /// a nonzero EDAC syndrome fails at word 0 with the buffer untouched.
    fn fill_line_untraced(&mut self, base: u32) -> Result<(), Edm> {
        let Some((words, parity_ok)) = self.mem.read_line(base) else {
            return Err(Edm::AddressError);
        };
        if self.edac_syndrome != 0 {
            return Err(Edm::DataError);
        }
        for i in 0..4 {
            if !parity_ok[i] {
                if i > 0 {
                    let w = words[i - 1];
                    self.fbuf = FillBuffer {
                        addr: base + (i as u32 - 1) * 4,
                        data: w,
                        parity: mem::parity(w),
                        valid: true,
                    };
                }
                return Err(Edm::DataError);
            }
        }
        self.fbuf = FillBuffer {
            addr: base + 12,
            data: words[3],
            parity: mem::parity(words[3]),
            valid: true,
        };
        let mut data = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            data[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.cache.fill(base, data);
        self.update_shadow(base);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn machine_with(src: &str) -> Machine {
        let program = assemble(src).expect("test program must assemble");
        let mut m = Machine::new();
        m.load_program(&program);
        m
    }

    #[test]
    fn arithmetic_and_ports() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 6
                li r2, 7
                mul r3, r1, r2
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 42);
    }

    #[test]
    fn float_pipeline() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x40490FDB    ; 3.14159274
                li r2, 0x40000000    ; 2.0
                fmul r3, r1, r2
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        let v = m.port_out_f32(2);
        assert!((v - 6.283_185_5).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn load_store_through_cache() {
        let mut m = machine_with(
            r#"
            .data 0x10000
            value: .float 10.5
            result: .word 0
            .text
            start:
                la r1, value
                ld r2, [r1+0]
                st r2, [r1+4]
                ld r3, [r1+4]
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out_f32(2), 10.5);
    }

    #[test]
    fn input_ports_reach_the_program() {
        let mut m = machine_with(
            r#"
            .text
            start:
                in r1, 0
                in r2, 1
                fsub r3, r1, r2
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        m.set_port_f32(PORT_R, 2000.0);
        m.set_port_f32(PORT_Y, 1850.0);
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out_f32(PORT_U), 150.0);
    }

    #[test]
    fn branches_and_compare() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 5
                li r2, 9
                cmp r1, r2
                blt less
                li r3, 0
                jmp done
            less:
                li r3, 1
            done:
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 1);
    }

    #[test]
    fn loop_counts_iterations() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0
                li r2, 10
            loop:
                addi r1, r1, 1
                yield
                cmp r1, r2
                blt loop
            forever:
                jmp forever
            "#,
        );
        let mut yields = 0;
        loop {
            match m.run(10_000) {
                RunExit::Yield => yields += 1,
                RunExit::Budget => break,
                RunExit::Trap(t) => panic!("unexpected trap {t:?}"),
            }
            if yields > 20 {
                break;
            }
        }
        assert_eq!(yields, 10);
        assert_eq!(m.reg(1), 10);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut m = Machine::new();
        let program = assemble(".text\nstart:\n nop\n").unwrap();
        m.load_program(&program);
        // Overwrite the nop at the entry point with an illegal opcode (0x3F).
        m.mem.load_rom_word(program.entry, 0xFC00_0000);
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::InstructionError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn privileged_instruction_traps() {
        let mut m = machine_with(".text\nstart:\n halt\n");
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::InstructionError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn null_pointer_access_check() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0
                ld r2, [r1+0]
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::AccessCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn unmapped_address_error() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x30000
                ld r2, [r1+0]
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::AddressError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn bus_error_on_external_bus() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x80000000
                ld r2, [r1+0]
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::BusError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn stack_window_enforced() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x20000      ; stack segment, below the guarded window
                st r1, [r1+0]
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::StorageError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn stack_access_inside_window_ok() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r14, 0x20FF0
                li r1, 77
                st r1, [r14-8]
                ld r2, [r14-8]
                out r2, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 77);
    }

    #[test]
    fn misaligned_access_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x10002
                ld r2, [r1+0]
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::AddressError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn integer_overflow_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x7FFFFFFF
                addi r2, r1, 1
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::OverflowCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn float_overflow_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x7F7FFFFF   ; f32::MAX
                fadd r2, r1, r1
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::OverflowCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn float_nan_input_is_illegal_operation() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x7FC00000   ; NaN
                li r2, 0x3F800000   ; 1.0
                fadd r3, r1, r2
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::IllegalOperation),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn float_division_by_zero_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x3F800000   ; 1.0
                li r2, 0x00000000   ; +0.0
                fdiv r3, r1, r2
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::DivisionCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn integer_division_by_zero_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 10
                li r2, 0
                div r3, r1, r2
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::DivisionCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn float_underflow_traps() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x00800000   ; smallest normal
                li r2, 0x3F000000   ; 0.5
                fmul r3, r1, r2
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::UnderflowCheck),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn jump_outside_rom_is_jump_error() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r15, 0x10000
                ret
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::JumpError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn call_and_ret() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 1
                call fn
                out r1, 2
                yield
            loop:
                jmp loop
            fn:
                addi r1, r1, 41
                ret
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 42);
    }

    #[test]
    fn chk_constraint_error() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x42CC0000   ; 102.0
                li r2, 0x00000000   ; 0.0
                li r3, 0x428C0000   ; 70.0
                chk r1, r2, r3
            "#,
        );
        match m.run(10) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::ConstraintError),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn chk_passes_in_range() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0x42200000   ; 40.0
                li r2, 0x00000000
                li r3, 0x428C0000   ; 70.0
                chk r1, r2, r3
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(10), RunExit::Yield);
    }

    #[test]
    fn itof_ftoi_roundtrip() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 123
                itof r2, r1
                ftoi r3, r2
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        );
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 123);
    }

    #[test]
    fn trap_freezes_machine() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0
                ld r2, [r1+0]
            "#,
        );
        let RunExit::Trap(first) = m.run(10) else {
            panic!("expected trap");
        };
        // Further stepping returns the same trap and does not advance.
        let count = m.instr_count();
        assert_eq!(m.step(), Err(first));
        assert_eq!(m.instr_count(), count);
    }

    #[test]
    fn run_until_positions_exactly() {
        let mut m = machine_with(
            r#"
            .text
            start:
                li r1, 0
            loop:
                addi r1, r1, 1
                jmp loop
            "#,
        );
        assert_eq!(m.run_until(7), RunExit::Budget);
        assert_eq!(m.instr_count(), 7);
    }

    #[test]
    fn determinism_same_program_same_state() {
        let src = r#"
            .text
            start:
                li r1, 3
                li r2, 4
            loop:
                add r3, r1, r2
                mul r2, r3, r1
                st r2, [r4+0x7F00]
                yield
                jmp loop
        "#;
        // r4 = 0 is the null page... use a valid base instead.
        let src = &src.replace("st r2, [r4+0x7F00]", "li r4, 0x10000\n st r2, [r4+0]");
        let mut a = machine_with(src);
        let mut b = machine_with(src);
        for _ in 0..3 {
            a.run(1000);
            b.run(1000);
        }
        assert_eq!(a, b);
    }

    /// A workload with straight-line runs, branches, calls, loads/stores
    /// and yields, used by the fast-replay equivalence tests.
    const REPLAY_SRC: &str = r#"
        .data 0x10000
        acc: .word 1
        .text
        start:
            li r1, 0x10000
            li r2, 0
            li r3, 25
        loop:
            ld r4, [r1+0]
            addi r4, r4, 3
            mul r5, r4, r4
            and r5, r5, r4
            st r4, [r1+0]
            call bump
            cmp r2, r3
            blt loop
            yield
            li r2, 0
            jmp loop
        bump:
            addi r2, r2, 1
            ret
    "#;

    #[test]
    fn fast_replay_matches_scalar_step() {
        let mut fast = machine_with(REPLAY_SRC);
        let mut scalar = machine_with(REPLAY_SRC);
        scalar.set_fast_replay(false);
        for _ in 0..5 {
            assert_eq!(fast.run(1000), scalar.run(1000));
            assert!(fast.state_equals(&scalar));
            assert_eq!(fast.instr_count(), scalar.instr_count());
        }
        assert!(
            fast.block_instructions() > 0,
            "the block engine must actually engage"
        );
        assert_eq!(scalar.block_instructions(), 0);
    }

    #[test]
    fn fast_replay_trap_matches_scalar_step() {
        // An overflow fires in the middle of a straight-line run.
        let src = r#"
            .text
            start:
                li r1, 0x7FFFFFF0
                li r2, 7
            loop:
                add r1, r1, r2
                add r1, r1, r2
                add r1, r1, r2
                jmp loop
        "#;
        let mut fast = machine_with(src);
        let mut scalar = machine_with(src);
        scalar.set_fast_replay(false);
        let a = fast.run(1000);
        let b = scalar.run(1000);
        assert_eq!(a, b);
        assert!(matches!(a, RunExit::Trap(t) if t.mechanism == Edm::OverflowCheck));
        assert!(fast.state_equals(&scalar));
        assert_eq!(fast.instr_count(), scalar.instr_count());
        assert_eq!(fast.trap(), scalar.trap());
    }

    #[test]
    fn fast_replay_stops_exactly_at_run_until_position() {
        let mut fast = machine_with(REPLAY_SRC);
        let mut scalar = machine_with(REPLAY_SRC);
        scalar.set_fast_replay(false);
        for stop in [3, 7, 50, 51, 52, 200] {
            assert_eq!(fast.run_until(stop), scalar.run_until(stop));
            assert_eq!(fast.instr_count(), scalar.instr_count());
            assert!(fast.state_equals(&scalar));
        }
    }

    #[test]
    fn rom_change_invalidates_affected_block() {
        // Mutating program text after load must fall the affected run back
        // to the scalar path with identical outcomes (the scalar decode
        // memo re-validates per word, so it re-decodes fresh).
        let program =
            assemble(".text\nstart:\n nop\n nop\n nop\n nop\n yield\nloop:\n jmp loop\n").unwrap();
        let mut fast = Machine::new();
        fast.load_program(&program);
        let mut scalar = Machine::new();
        scalar.load_program(&program);
        scalar.set_fast_replay(false);
        // Overwrite the third nop with an illegal opcode in both images.
        fast.mem.load_rom_word(program.entry + 8, 0xFC00_0000);
        scalar.mem.load_rom_word(program.entry + 8, 0xFC00_0000);
        let a = fast.run(100);
        let b = scalar.run(100);
        assert_eq!(a, b);
        assert!(matches!(a, RunExit::Trap(t) if t.mechanism == Edm::InstructionError));
        assert!(fast.state_equals(&scalar));
        assert_eq!(fast.instr_count(), scalar.instr_count());
        assert_eq!(
            fast.block_instructions(),
            0,
            "the stale block must not replay"
        );
    }

    #[test]
    fn dirty_delta_restore_equals_deep_clone() {
        let mut golden = machine_with(REPLAY_SRC);
        assert_eq!(golden.run(10_000), RunExit::Yield);
        let checkpoint = golden.clone();
        let mut arena = checkpoint.clone();
        arena.begin_dirty_log();
        // Diverge: run on, then poke extra damage.
        assert_eq!(arena.run(10_000), RunExit::Yield);
        assert!(arena.poke_word(mem::RAM_BASE + 0x40, 0xDEAD_BEEF));
        assert!(!arena.state_equals(&checkpoint));
        let dirty = arena.dirty_words().unwrap().len();
        assert!(dirty > 0, "the run must have dirtied memory");
        let copied = arena.restore_delta_from(&checkpoint, &[]);
        assert_eq!(copied, dirty);
        assert!(arena.state_equals(&checkpoint));
        assert_eq!(arena.instr_count(), checkpoint.instr_count());
        // And the restored machine replays bit-identically to a clone.
        let mut cloned = checkpoint.clone();
        assert_eq!(arena.run(5_000), cloned.run(5_000));
        assert!(arena.state_equals(&cloned));
    }

    #[test]
    fn restore_applies_extra_golden_windows() {
        let mut golden = machine_with(REPLAY_SRC);
        assert_eq!(golden.run(10_000), RunExit::Yield);
        let early = golden.clone();
        assert_eq!(golden.run(10_000), RunExit::Yield);
        let late = golden.clone();
        // The words golden wrote between the two checkpoints.
        let window: Vec<u32> = (0..mem::NUM_DATA_WORDS as u32)
            .filter(|&k| {
                early.memory().data_word(k as usize) != late.memory().data_word(k as usize)
            })
            .collect();
        let mut arena = early.clone();
        arena.begin_dirty_log();
        // Diverge from the golden trajectory, then run on.
        assert!(arena.poke_word(mem::RAM_BASE, 9));
        assert_eq!(arena.run(10_000), RunExit::Yield);
        // Hop forward to the later checkpoint: dirty set + golden window.
        arena.restore_delta_from(&late, &[window]);
        assert!(arena.state_equals(&late));
    }

    #[test]
    fn sparse_equality_agrees_with_full_equality() {
        let mut golden = machine_with(REPLAY_SRC);
        assert_eq!(golden.run(10_000), RunExit::Yield);
        let checkpoint = golden.clone();
        let mut m = checkpoint.clone();
        assert!(m.state_equals_sparse(&checkpoint, &[]).is_none(), "no log");
        m.begin_dirty_log();
        assert_eq!(m.state_equals_sparse(&checkpoint, &[]), Some(true));
        // Diverge in memory only via a logged poke.
        assert!(m.poke_word(mem::RAM_BASE + 0x40, 0x1234_5678));
        assert_eq!(
            m.state_equals_sparse(&checkpoint, &[]),
            Some(m.state_equals(&checkpoint))
        );
        assert_eq!(m.state_equals_sparse(&checkpoint, &[]), Some(false));
    }
}

#[cfg(test)]
mod parity_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::scan::BitLocation;

    fn x_resident_machine() -> Machine {
        let program = assemble(
            r#"
            .data 0x10000
            x: .float 10.0
            .text
            start:
                li r1, 0x10000
                ld r2, [r1+0]
                yield
            loop:
                li r1, 0x10000
                ld r3, [r1+0]
                out r3, 2
                yield
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        m.set_cache_parity(true);
        m
    }

    #[test]
    fn parity_cache_detects_data_flip() {
        let mut m = x_resident_machine();
        assert_eq!(m.run(1000), RunExit::Yield);
        m.scan_flip(BitLocation::CacheData { line: 0, bit: 31 });
        match m.run(1000) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::DataError),
            other => panic!("parity must detect the flip, got {other:?}"),
        }
    }

    #[test]
    fn parity_cache_detects_tag_flip() {
        let mut m = x_resident_machine();
        assert_eq!(m.run(1000), RunExit::Yield);
        m.scan_flip(BitLocation::CacheTag { line: 0, bit: 3 });
        match m.run(1000) {
            RunExit::Trap(t) => assert_eq!(t.mechanism, Edm::DataError),
            other => panic!("parity must detect the flip, got {other:?}"),
        }
    }

    #[test]
    fn parity_cache_quiet_when_fault_free() {
        let mut m = x_resident_machine();
        for _ in 0..100 {
            assert_eq!(m.run(1000), RunExit::Yield, "no spurious detections");
        }
    }

    #[test]
    fn unprotected_cache_lets_the_flip_through() {
        let mut m = x_resident_machine();
        m.set_cache_parity(false);
        assert_eq!(m.run(1000), RunExit::Yield);
        m.scan_flip(BitLocation::CacheData { line: 0, bit: 31 });
        assert_eq!(m.run(1000), RunExit::Yield);
        assert_eq!(m.port_out_f32(2), -10.0, "corruption reaches the program");
    }
}
