//! Golden-run access tracing — the def/use substrate for fault-space
//! pruning.
//!
//! While the golden reference run executes, the machine records, for every
//! *traceable unit* of architectural state (a general-purpose register, a
//! cache data word, an output port, a save register, a memory word), the
//! ordered dynamic-instruction indices at which that unit is read or fully
//! written. A campaign planner can then classify most transient single-bit
//! faults without simulating them:
//!
//! * first post-injection access is a **full-width write** → the flip is
//!   deposited over with the fault-free value before anything observed it:
//!   the outcome is *overwritten*;
//! * the unit is **never accessed** again → the flip sits untouched until
//!   the end-of-run state diff: the outcome is *latent*;
//! * first post-injection access is a **read** at boundary `b` → every
//!   fault in the same unit whose first post-injection access is that same
//!   read produces the identical faulty trajectory, so one simulated
//!   representative stands for the whole equivalence class.
//!
//! Only units whose every semantic access flows through an explicit trace
//! hook may be classified this way; state the EDMs or the pipeline consult
//! implicitly (the signature register, the fetch latch, cache tags, …) is
//! excluded by [`crate::scan::BitLocation::trace_unit`] returning `None`.

use crate::cache;
use crate::mem;
use serde::{Deserialize, Serialize};

/// How a traceable unit was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The unit's value was observed (any width): a flip in it is live.
    Read,
    /// The whole unit was overwritten without being observed first.
    Write,
    /// Part of the unit was overwritten. The real machine only performs
    /// unit-width writes, so it never records this kind; it exists so the
    /// planner (and its adversarial tests) must treat anything narrower
    /// than a full write conservatively — as neither a kill nor a use.
    PartialWrite,
}

impl AccessKind {
    /// `true` only for a full-width write (the only kind that analytically
    /// overwrites a pending flip).
    #[must_use]
    pub fn is_full_write(&self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One recorded access: the dynamic instruction during which it happened.
///
/// A fault injected at instruction boundary `t` (i.e. after `t`
/// instructions have retired, before instruction `t` executes) is visible
/// to exactly the accesses with `at >= t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Dynamic instruction index during which the access occurred.
    pub at: u64,
    /// Read, full write, or partial write.
    pub kind: AccessKind,
}

/// A unit of architectural state with a dense trace index. Each scan-chain
/// bit that is traceable maps to exactly one unit (the register, cache
/// word, port, or save slot containing it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceUnit {
    /// General-purpose register `r0..r15`.
    Reg(u8),
    /// One 32-bit word of a data-cache line (`word` in `0..4`).
    CacheWord {
        /// Cache line index.
        line: usize,
        /// Word within the line.
        word: usize,
    },
    /// One 32-bit output port.
    PortOut(u8),
    /// One of the two save registers.
    Save(u8),
    /// One word of data RAM or stack, by [`mem::word_key`] index.
    MemWord(usize),
}

/// Number of non-memory units: 16 registers + 8×4 cache words + 4 output
/// ports + 2 save registers.
const CPU_UNITS: usize = 16 + cache::NUM_LINES * cache::WORDS_PER_LINE + 4 + 2;

impl TraceUnit {
    /// Total number of traceable units (CPU units plus every RAM and stack
    /// word).
    pub const COUNT: usize = CPU_UNITS + mem::NUM_DATA_WORDS;

    /// Dense index of this unit in `0..TraceUnit::COUNT`.
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            TraceUnit::Reg(r) => r as usize,
            TraceUnit::CacheWord { line, word } => 16 + line * cache::WORDS_PER_LINE + word,
            TraceUnit::PortOut(p) => 16 + cache::NUM_LINES * cache::WORDS_PER_LINE + p as usize,
            TraceUnit::Save(s) => 16 + cache::NUM_LINES * cache::WORDS_PER_LINE + 4 + s as usize,
            TraceUnit::MemWord(w) => CPU_UNITS + w,
        }
    }
}

/// The full per-unit access trace of one golden run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    units: Vec<Vec<Access>>,
}

impl Default for AccessTrace {
    fn default() -> Self {
        AccessTrace::new()
    }
}

impl AccessTrace {
    /// An empty trace covering every unit.
    #[must_use]
    pub fn new() -> Self {
        AccessTrace {
            units: vec![Vec::new(); TraceUnit::COUNT],
        }
    }

    /// Appends an access. Entries for one unit must arrive in
    /// non-decreasing `at` order (they do, when recorded during execution);
    /// [`AccessTrace::first_at_or_after`] relies on it.
    pub fn record(&mut self, unit: TraceUnit, at: u64, kind: AccessKind) {
        let slot = &mut self.units[unit.index()];
        debug_assert!(slot.last().is_none_or(|a| a.at <= at), "trace not sorted");
        slot.push(Access { at, kind });
    }

    /// All accesses to `unit`, in execution order.
    #[must_use]
    pub fn accesses(&self, unit: TraceUnit) -> &[Access] {
        &self.units[unit.index()]
    }

    /// The first access to `unit` visible to a fault injected at
    /// instruction boundary `inject_at`, i.e. the first entry with
    /// `at >= inject_at`; `None` when the unit is never touched again.
    #[must_use]
    pub fn first_at_or_after(&self, unit: TraceUnit, inject_at: u64) -> Option<Access> {
        let slot = &self.units[unit.index()];
        let i = slot.partition_point(|a| a.at < inject_at);
        slot.get(i).copied()
    }

    /// Total number of recorded accesses, across all units.
    #[must_use]
    pub fn total_accesses(&self) -> usize {
        self.units.iter().map(Vec::len).sum()
    }

    /// Mutates the trace (for adversarial tests): inserts `access` into
    /// `unit`'s slot at its sorted position.
    pub fn insert_for_test(&mut self, unit: TraceUnit, access: Access) {
        let slot = &mut self.units[unit.index()];
        let i = slot.partition_point(|a| a.at <= access.at);
        slot.insert(i, access);
    }

    /// Mutates the kind of the access at position `i` of `unit`'s slot
    /// (for adversarial tests).
    pub fn set_kind_for_test(&mut self, unit: TraceUnit, i: usize, kind: AccessKind) {
        self.units[unit.index()][i].kind = kind;
    }
}

/// The machine's optional trace recorder. Behaviourally inert: clones of a
/// tracing machine do not trace (checkpoints taken mid-golden-run must not
/// alias the recorder), equality ignores it, and it serializes as `null`
/// and deserializes empty.
#[derive(Debug, Default)]
pub(crate) struct TraceSlot(pub(crate) Option<Box<AccessTrace>>);

impl Clone for TraceSlot {
    fn clone(&self) -> Self {
        TraceSlot(None)
    }
}

impl PartialEq for TraceSlot {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for TraceSlot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for TraceSlot {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(TraceSlot::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_indices_are_dense_and_unique() {
        let mut seen = vec![false; TraceUnit::COUNT];
        let mut units: Vec<TraceUnit> = Vec::new();
        for r in 0..16 {
            units.push(TraceUnit::Reg(r));
        }
        for line in 0..cache::NUM_LINES {
            for word in 0..cache::WORDS_PER_LINE {
                units.push(TraceUnit::CacheWord { line, word });
            }
        }
        for p in 0..4 {
            units.push(TraceUnit::PortOut(p));
        }
        for s in 0..2 {
            units.push(TraceUnit::Save(s));
        }
        for w in 0..mem::NUM_DATA_WORDS {
            units.push(TraceUnit::MemWord(w));
        }
        assert_eq!(units.len(), TraceUnit::COUNT);
        for u in units {
            let i = u.index();
            assert!(!seen[i], "duplicate index {i} for {u:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn first_at_or_after_is_a_lower_bound() {
        let mut t = AccessTrace::new();
        let u = TraceUnit::Reg(3);
        t.record(u, 10, AccessKind::Read);
        t.record(u, 10, AccessKind::Write);
        t.record(u, 25, AccessKind::Read);
        assert_eq!(
            t.first_at_or_after(u, 0),
            Some(Access {
                at: 10,
                kind: AccessKind::Read
            })
        );
        assert_eq!(
            t.first_at_or_after(u, 10),
            Some(Access {
                at: 10,
                kind: AccessKind::Read
            })
        );
        assert_eq!(
            t.first_at_or_after(u, 11),
            Some(Access {
                at: 25,
                kind: AccessKind::Read
            })
        );
        assert_eq!(t.first_at_or_after(u, 26), None);
        assert_eq!(t.first_at_or_after(TraceUnit::Reg(4), 0), None);
    }

    #[test]
    fn intra_instruction_order_is_preserved() {
        // read-then-write of the same unit during one instruction must
        // stay read-first: the read makes the flip live.
        let mut t = AccessTrace::new();
        let u = TraceUnit::CacheWord { line: 2, word: 1 };
        t.record(u, 7, AccessKind::Read);
        t.record(u, 7, AccessKind::Write);
        let first = t.first_at_or_after(u, 7).unwrap();
        assert_eq!(first.kind, AccessKind::Read);
    }

    #[test]
    fn only_full_writes_kill() {
        assert!(AccessKind::Write.is_full_write());
        assert!(!AccessKind::Read.is_full_write());
        assert!(!AccessKind::PartialWrite.is_full_write());
    }
}
