//! The scan chain: bit-level access to every internal state element.
//!
//! Thor's scan-chain logic gives the GOOFI tool read access to ~3000 and
//! write access to ~2700 of its internal state elements; the paper samples
//! 2250 of them (1824 in the data cache, 426 in the registers) as fault
//! locations. This module enumerates the simulator's state elements the same
//! way: [`catalog`] lists every scannable bit as a [`BitLocation`], each
//! attributed to a [`CpuPart`] matching the Cache/Registers split of
//! Tables 2 and 3, and the machine can read, flip and snapshot them.

use crate::cache::{LINE_BYTES, NUM_LINES, TAG_BITS};
use crate::machine::{Machine, NUM_OUT_PORTS};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Which part of the CPU a state element belongs to — the two columns of
/// the paper's result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuPart {
    /// The on-chip data cache and its interface buffers.
    Cache,
    /// Everything else: register file, PC, PSR, pipeline latches,
    /// supervisor state ("Registers" in the tables).
    Registers,
}

impl fmt::Display for CpuPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CpuPart::Cache => "Cache",
            CpuPart::Registers => "Registers",
        })
    }
}

/// One scannable state bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variant names describe the state elements
pub enum BitLocation {
    CacheData { line: u8, bit: u8 },
    CacheTag { line: u8, bit: u8 },
    CacheValid { line: u8 },
    CacheDirty { line: u8 },
    StoreBufAddr { bit: u8 },
    StoreBufData { bit: u8 },
    StoreBufValid,
    FillBufAddr { bit: u8 },
    FillBufData { bit: u8 },
    FillBufParity,
    FillBufValid,
    EdacSyndrome { bit: u8 },
    Reg { index: u8, bit: u8 },
    Pc { bit: u8 },
    Psr { bit: u8 },
    SigReg { bit: u8 },
    StackLo { bit: u8 },
    StackHi { bit: u8 },
    Epc { bit: u8 },
    Cause { bit: u8 },
    Save { index: u8, bit: u8 },
    FetchWord { bit: u8 },
    FetchPc { bit: u8 },
    FetchValid,
    OperandA { bit: u8 },
    OperandB { bit: u8 },
    ResultValue { bit: u8 },
    ResultRd { bit: u8 },
    ResultWe,
    PortOut { port: u8, bit: u8 },
}

impl BitLocation {
    /// The part of the CPU this bit belongs to.
    #[must_use]
    pub fn part(&self) -> CpuPart {
        use BitLocation::*;
        match self {
            CacheData { .. }
            | CacheTag { .. }
            | CacheValid { .. }
            | CacheDirty { .. }
            | StoreBufAddr { .. }
            | StoreBufData { .. }
            | StoreBufValid
            | FillBufAddr { .. }
            | FillBufData { .. }
            | FillBufParity
            | FillBufValid
            | EdacSyndrome { .. } => CpuPart::Cache,
            _ => CpuPart::Registers,
        }
    }

    /// The access-trace unit governing this bit, or `None` when the bit is
    /// *not* traceable by the def/use trace. Most such bits are still
    /// covered analytically by the coarser EDM-visibility trace — see
    /// [`BitLocation::vis_unit`]; only the few bits where *that* returns
    /// `None` too (or whose unit is not batch-inert) must always be
    /// simulated.
    ///
    /// A location is traceable only if **every** semantic access to it
    /// flows through an explicit trace hook. That holds for the register
    /// file (`read_reg`/`write_reg`), cache data words (cached reads and
    /// writes, line fills, write-backs), the output ports (`out` plus the
    /// harness's sample at each `yield`), and the save registers (never
    /// touched at run time). Everything else is consulted implicitly —
    /// the fetch latch on every step, the signature register by the
    /// control-flow monitor, cache tags/flags by every hit check, the
    /// store/fill buffers by the memory interface, the PSR by branches,
    /// the stack bounds and EDAC syndrome by the EDMs — so no per-access
    /// trace can be complete for them.
    #[must_use]
    pub fn trace_unit(&self) -> Option<crate::access::TraceUnit> {
        use crate::access::TraceUnit;
        match *self {
            BitLocation::Reg { index, .. } => Some(TraceUnit::Reg(index)),
            BitLocation::CacheData { line, bit } => Some(TraceUnit::CacheWord {
                line: line as usize,
                word: crate::cache::word_of_data_bit(bit as usize),
            }),
            BitLocation::PortOut { port, .. } => Some(TraceUnit::PortOut(port)),
            BitLocation::Save { index, .. } => Some(TraceUnit::Save(index)),
            _ => None,
        }
    }
}

/// An immutable capture of every scannable bit, used to diff the end state
/// of an experiment against the golden run (latent-error detection).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanSnapshot {
    bits: Vec<bool>,
}

impl ScanSnapshot {
    /// Number of captured bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the snapshot holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of differing bits between two snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different lengths.
    #[must_use]
    pub fn diff_count(&self, other: &ScanSnapshot) -> usize {
        assert_eq!(self.len(), other.len(), "snapshots of different machines");
        self.bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

fn bit_of_u32(v: u32, bit: u8) -> bool {
    (v >> bit) & 1 == 1
}

fn flip_u32(v: &mut u32, bit: u8) {
    *v ^= 1 << bit;
}

/// Builds the complete, ordered list of scannable bits.
#[must_use]
pub fn catalog() -> &'static [BitLocation] {
    static CATALOG: OnceLock<Vec<BitLocation>> = OnceLock::new();
    CATALOG.get_or_init(|| {
        let mut v = Vec::new();
        // --- Cache part ---
        for line in 0..NUM_LINES as u8 {
            for bit in 0..(LINE_BYTES * 8) as u8 {
                v.push(BitLocation::CacheData { line, bit });
            }
            for bit in 0..TAG_BITS as u8 {
                v.push(BitLocation::CacheTag { line, bit });
            }
            v.push(BitLocation::CacheValid { line });
            v.push(BitLocation::CacheDirty { line });
        }
        for bit in 0..32 {
            v.push(BitLocation::StoreBufAddr { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::StoreBufData { bit });
        }
        v.push(BitLocation::StoreBufValid);
        for bit in 0..32 {
            v.push(BitLocation::FillBufAddr { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::FillBufData { bit });
        }
        v.push(BitLocation::FillBufParity);
        v.push(BitLocation::FillBufValid);
        for bit in 0..8 {
            v.push(BitLocation::EdacSyndrome { bit });
        }
        // --- Register part ---
        for index in 0..16u8 {
            for bit in 0..32 {
                v.push(BitLocation::Reg { index, bit });
            }
        }
        for bit in 0..32 {
            v.push(BitLocation::Pc { bit });
        }
        for bit in 0..8 {
            v.push(BitLocation::Psr { bit });
        }
        for bit in 0..16 {
            v.push(BitLocation::SigReg { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::StackLo { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::StackHi { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::Epc { bit });
        }
        for bit in 0..8 {
            v.push(BitLocation::Cause { bit });
        }
        for index in 0..2u8 {
            for bit in 0..32 {
                v.push(BitLocation::Save { index, bit });
            }
        }
        for bit in 0..32 {
            v.push(BitLocation::FetchWord { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::FetchPc { bit });
        }
        v.push(BitLocation::FetchValid);
        for bit in 0..32 {
            v.push(BitLocation::OperandA { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::OperandB { bit });
        }
        for bit in 0..32 {
            v.push(BitLocation::ResultValue { bit });
        }
        for bit in 0..4 {
            v.push(BitLocation::ResultRd { bit });
        }
        v.push(BitLocation::ResultWe);
        for port in 0..NUM_OUT_PORTS as u8 {
            for bit in 0..32 {
                v.push(BitLocation::PortOut { port, bit });
            }
        }
        v
    })
}

impl Machine {
    /// Reads one scannable bit.
    #[must_use]
    pub fn scan_read(&self, loc: BitLocation) -> bool {
        use BitLocation::*;
        match loc {
            CacheData { line, bit } => {
                let l = self.cache.line(line as usize);
                l.data[(bit / 8) as usize] >> (bit % 8) & 1 == 1
            }
            CacheTag { line, bit } => bit_of_u32(self.cache.line(line as usize).tag, bit),
            CacheValid { line } => self.cache.line(line as usize).valid,
            CacheDirty { line } => self.cache.line(line as usize).dirty,
            StoreBufAddr { bit } => bit_of_u32(self.sbuf.addr, bit),
            StoreBufData { bit } => bit_of_u32(self.sbuf.data, bit),
            StoreBufValid => self.sbuf.valid,
            FillBufAddr { bit } => bit_of_u32(self.fbuf.addr, bit),
            FillBufData { bit } => bit_of_u32(self.fbuf.data, bit),
            FillBufParity => self.fbuf.parity,
            FillBufValid => self.fbuf.valid,
            EdacSyndrome { bit } => self.edac_syndrome >> bit & 1 == 1,
            Reg { index, bit } => bit_of_u32(self.regs[index as usize], bit),
            Pc { bit } => bit_of_u32(self.pc, bit),
            Psr { bit } => self.psr >> bit & 1 == 1,
            SigReg { bit } => self.sig >> bit & 1 == 1,
            StackLo { bit } => bit_of_u32(self.stack_lo, bit),
            StackHi { bit } => bit_of_u32(self.stack_hi, bit),
            Epc { bit } => bit_of_u32(self.epc, bit),
            Cause { bit } => self.cause >> bit & 1 == 1,
            Save { index, bit } => bit_of_u32(self.save[index as usize], bit),
            FetchWord { bit } => bit_of_u32(self.fetch.word, bit),
            FetchPc { bit } => bit_of_u32(self.fetch.pc, bit),
            FetchValid => self.fetch.valid,
            OperandA { bit } => bit_of_u32(self.idex.a, bit),
            OperandB { bit } => bit_of_u32(self.idex.b, bit),
            ResultValue { bit } => bit_of_u32(self.exwb.value, bit),
            ResultRd { bit } => self.exwb.rd >> bit & 1 == 1,
            ResultWe => self.exwb.we,
            PortOut { port, bit } => bit_of_u32(self.ports_out[port as usize], bit),
        }
    }

    /// Flips one scannable bit — the single-bit-flip fault model of the
    /// paper, injected exactly as SCIFI does: read the scan chain, invert
    /// the bit, write it back.
    pub fn scan_flip(&mut self, loc: BitLocation) {
        use BitLocation::*;
        match loc {
            CacheData { line, bit } => {
                let l = self.cache.line_mut(line as usize);
                l.data[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            CacheTag { line, bit } => flip_u32(&mut self.cache.line_mut(line as usize).tag, bit),
            CacheValid { line } => {
                let l = self.cache.line_mut(line as usize);
                l.valid = !l.valid;
            }
            CacheDirty { line } => {
                let l = self.cache.line_mut(line as usize);
                l.dirty = !l.dirty;
            }
            StoreBufAddr { bit } => flip_u32(&mut self.sbuf.addr, bit),
            StoreBufData { bit } => flip_u32(&mut self.sbuf.data, bit),
            StoreBufValid => self.sbuf.valid = !self.sbuf.valid,
            FillBufAddr { bit } => flip_u32(&mut self.fbuf.addr, bit),
            FillBufData { bit } => flip_u32(&mut self.fbuf.data, bit),
            FillBufParity => self.fbuf.parity = !self.fbuf.parity,
            FillBufValid => self.fbuf.valid = !self.fbuf.valid,
            EdacSyndrome { bit } => self.edac_syndrome ^= 1 << bit,
            Reg { index, bit } => flip_u32(&mut self.regs[index as usize], bit),
            Pc { bit } => flip_u32(&mut self.pc, bit),
            Psr { bit } => self.psr ^= 1 << bit,
            SigReg { bit } => self.sig ^= 1 << bit,
            StackLo { bit } => flip_u32(&mut self.stack_lo, bit),
            StackHi { bit } => flip_u32(&mut self.stack_hi, bit),
            Epc { bit } => flip_u32(&mut self.epc, bit),
            Cause { bit } => self.cause ^= 1 << bit,
            Save { index, bit } => flip_u32(&mut self.save[index as usize], bit),
            FetchWord { bit } => flip_u32(&mut self.fetch.word, bit),
            FetchPc { bit } => flip_u32(&mut self.fetch.pc, bit),
            FetchValid => self.fetch.valid = !self.fetch.valid,
            OperandA { bit } => flip_u32(&mut self.idex.a, bit),
            OperandB { bit } => flip_u32(&mut self.idex.b, bit),
            ResultValue { bit } => flip_u32(&mut self.exwb.value, bit),
            ResultRd { bit } => self.exwb.rd ^= 1 << bit,
            ResultWe => self.exwb.we = !self.exwb.we,
            PortOut { port, bit } => flip_u32(&mut self.ports_out[port as usize], bit),
        }
    }

    /// Forces one scannable bit to `value` — the stuck-at fault model:
    /// read the scan chain and write the bit back only if it differs, so
    /// re-applying the same stuck-at is idempotent.
    pub fn scan_set(&mut self, loc: BitLocation, value: bool) {
        if self.scan_read(loc) != value {
            self.scan_flip(loc);
        }
    }

    /// Captures every scannable bit.
    #[must_use]
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            bits: catalog().iter().map(|&loc| self.scan_read(loc)).collect(),
        }
    }

    /// Writes a full 32-bit word into the cache copy of `addr` via the scan
    /// chain, without changing the line's dirty/valid bits. Returns `false`
    /// when the address is not cache-resident. (GOOFI can write scan chains
    /// arbitrarily; this is the multi-bit corruption used to reproduce the
    /// in-range state error of Figure 10.)
    pub fn scan_write_cached(&mut self, addr: u32, word: u32) -> bool {
        if !self.cache.hits(addr) {
            return false;
        }
        let line = crate::cache::index_of(addr);
        let off = (addr & 0xC) as usize;
        let l = self.cache.line_mut(line);
        l.data[off..off + 4].copy_from_slice(&word.to_le_bytes());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::RunExit;

    #[test]
    fn catalog_is_stable_and_sizeable() {
        let c1 = catalog();
        let c2 = catalog();
        assert_eq!(c1.len(), c2.len());
        // The paper samples 2250 state elements; we should be in the same
        // order of magnitude.
        assert!(
            (1500..4500).contains(&c1.len()),
            "catalog has {} bits",
            c1.len()
        );
    }

    #[test]
    fn catalog_has_both_parts() {
        let cache = catalog()
            .iter()
            .filter(|l| l.part() == CpuPart::Cache)
            .count();
        let regs = catalog()
            .iter()
            .filter(|l| l.part() == CpuPart::Registers)
            .count();
        assert!(cache > 1000, "cache bits: {cache}");
        assert!(regs > 500, "register bits: {regs}");
        // The cache dominates, as in Thor (1824 vs 426).
        assert!(cache > regs);
    }

    #[test]
    fn flip_is_involutive_everywhere() {
        let mut m = Machine::new();
        let before = m.scan_snapshot();
        for &loc in catalog() {
            m.scan_flip(loc);
            m.scan_flip(loc);
        }
        assert_eq!(m.scan_snapshot().diff_count(&before), 0);
    }

    #[test]
    fn single_flip_changes_exactly_one_bit() {
        let mut m = Machine::new();
        let before = m.scan_snapshot();
        m.scan_flip(BitLocation::Reg { index: 3, bit: 17 });
        assert_eq!(m.scan_snapshot().diff_count(&before), 1);
        assert_eq!(m.reg(3), 1 << 17);
    }

    #[test]
    fn scan_set_forces_and_is_idempotent() {
        let mut m = Machine::new();
        let loc = BitLocation::Reg { index: 4, bit: 9 };
        let before = m.scan_snapshot();
        // Forcing the current value is a no-op.
        m.scan_set(loc, false);
        assert_eq!(m.scan_snapshot().diff_count(&before), 0);
        // Forcing the opposite value flips exactly that bit; re-applying
        // the same stuck-at changes nothing further.
        m.scan_set(loc, true);
        assert_eq!(m.scan_snapshot().diff_count(&before), 1);
        assert!(m.scan_read(loc));
        m.scan_set(loc, true);
        assert_eq!(m.scan_snapshot().diff_count(&before), 1);
        assert_eq!(m.reg(4), 1 << 9);
    }

    #[test]
    fn flip_register_bit_observable_by_program() {
        let program = assemble(
            r#"
            .text
            start:
                li r1, 0
                out r1, 2
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        // Run up to (but not including) the out; then corrupt r1. The entry
        // point starts at the lui (index 0), so the out is instruction 2.
        m.run_until(2);
        m.scan_flip(BitLocation::Reg { index: 1, bit: 5 });
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out(2), 32);
    }

    #[test]
    fn cache_data_flip_corrupts_stored_variable() {
        let program = assemble(
            r#"
            .data 0x10000
            x: .float 10.0
            .text
            start:
                la r1, x
                ld r2, [r1+0]   ; brings x into the cache
                yield
                ld r3, [r1+0]   ; reads the (possibly corrupted) cache copy
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(100), RunExit::Yield);
        // x sits in line 0 (address 0x10000); flip its sign bit (bit 31 of
        // the first word).
        assert!(m.scan_read(BitLocation::CacheValid { line: 0 }));
        m.scan_flip(BitLocation::CacheData { line: 0, bit: 31 });
        assert_eq!(m.run(100), RunExit::Yield);
        assert_eq!(m.port_out_f32(2), -10.0, "sign flip visible to the load");
    }

    #[test]
    fn cache_tag_flip_causes_miss_and_stale_reload() {
        let program = assemble(
            r#"
            .data 0x10000
            x: .float 10.0
            .text
            start:
                la r1, x
                ld r2, [r1+0]
                li r3, 0x41A00000   ; 20.0
                st r3, [r1+0]       ; dirty cache copy = 20.0 (memory 10.0)
                yield
                ld r4, [r1+0]
                out r4, 2
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(1000), RunExit::Yield);
        // Flip a low tag bit of line 0: the next access misses; the dirty
        // line is written back to the *wrong* address and the stale value
        // (10.0) is reloaded from memory.
        m.scan_flip(BitLocation::CacheTag { line: 0, bit: 0 });
        match m.run(1000) {
            RunExit::Yield => {
                assert_eq!(m.port_out_f32(2), 10.0, "stale value reloaded");
            }
            RunExit::Trap(t) => {
                // Alternatively the write-back address fell into a protected
                // region; also a faithful outcome.
                assert!(
                    matches!(
                        t.mechanism,
                        crate::edm::ErrorMechanism::AddressError
                            | crate::edm::ErrorMechanism::AccessCheck
                    ),
                    "unexpected mechanism {t:?}"
                );
            }
            other => panic!("unexpected exit {other:?}"),
        }
    }

    #[test]
    fn edac_syndrome_flip_raises_data_error_on_next_fill() {
        let program = assemble(
            r#"
            .data 0x10000
            a: .word 1
            .data 0x10080
            b: .word 2
            .text
            start:
                la r1, a
                ld r2, [r1+0]
                yield
                la r3, b
                ld r4, [r3+0]   ; second fill after the flip
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(1000), RunExit::Yield);
        m.scan_flip(BitLocation::EdacSyndrome { bit: 3 });
        match m.run(1000) {
            RunExit::Trap(t) => {
                assert_eq!(t.mechanism, crate::edm::ErrorMechanism::DataError);
            }
            other => panic!("expected DataError, got {other:?}"),
        }
    }

    #[test]
    fn sig_register_flip_raises_control_flow_error() {
        let program = assemble(
            r#"
            .text
            start:
                nop
                nop
                yield
            after:
                nop
                jmp after
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(100), RunExit::Yield);
        m.scan_flip(BitLocation::SigReg { bit: 2 });
        match m.run(100) {
            RunExit::Trap(t) => {
                assert_eq!(t.mechanism, crate::edm::ErrorMechanism::ControlFlowError);
            }
            other => panic!("expected ControlFlowError, got {other:?}"),
        }
    }

    #[test]
    fn scan_write_cached_overwrites_in_place() {
        let program = assemble(
            r#"
            .data 0x10000
            x: .float 10.0
            .text
            start:
                la r1, x
                ld r2, [r1+0]
                yield
                ld r3, [r1+0]
                out r3, 2
                yield
            loop:
                jmp loop
            "#,
        )
        .unwrap();
        let mut m = Machine::new();
        m.load_program(&program);
        assert_eq!(m.run(1000), RunExit::Yield);
        assert!(m.scan_write_cached(0x10000, 69.0f32.to_bits()));
        assert_eq!(m.run(1000), RunExit::Yield);
        assert_eq!(m.port_out_f32(2), 69.0);
    }

    #[test]
    fn snapshot_diff_detects_state_divergence() {
        let mut a = Machine::new();
        let b = Machine::new();
        assert_eq!(a.scan_snapshot().diff_count(&b.scan_snapshot()), 0);
        a.scan_flip(BitLocation::Save { index: 1, bit: 0 });
        assert_eq!(a.scan_snapshot().diff_count(&b.scan_snapshot()), 1);
    }
}
