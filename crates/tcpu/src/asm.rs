//! A two-pass assembler for the tcpu instruction set.
//!
//! Supported syntax (one statement per line, `;` or `#` start a comment):
//!
//! ```text
//! .text                      ; switch to code (ROM) — the default
//! .data 0x10000              ; switch to data at an absolute RAM address
//! .equ  NAME, value          ; symbolic constant
//! .word 1, 0x2C              ; data words
//! .float 70.0, 0.0154        ; IEEE-754 single-precision data
//! label:                     ; code or data label
//!     li   r1, 0x10000       ; pseudo: lui+ori (always two words)
//!     la   r1, label         ; pseudo: load a symbol's address
//!     ld   r2, [r1+8]        ; memory operands: [reg], [reg+imm], [reg-imm]
//!     beq  label             ; branches take label targets
//! ```
//!
//! ## Control-flow signatures
//!
//! The assembler cooperates with the CPU's signature monitor: it
//! automatically inserts a `sig` check **before every code label** (closing
//! the fall-through block) and **after every `call`** (the return resets the
//! run-time signature), then computes each check's expected value with the
//! same [`signature_step`](crate::isa::signature_step) function the hardware
//! uses. A bit-flip that diverts control flow into the middle of a block
//! therefore fails the next check and raises CONTROL FLOW ERROR.

use crate::isa::{self, Opcode};
use crate::mem::{RAM_BASE, RAM_SIZE, ROM_BASE, ROM_SIZE, STACK_BASE, STACK_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An assembled program ready for [`Machine::load_program`].
///
/// [`Machine::load_program`]: crate::machine::Machine::load_program
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Instruction words, laid out from `code_base`.
    pub code: Vec<u32>,
    /// First code address.
    pub code_base: u32,
    /// Entry point (the `start` label when present, else `code_base`).
    pub entry: u32,
    /// Initialised data words as `(address, word)` pairs.
    pub data: Vec<(u32, u32)>,
    /// All symbols (labels and `.equ` constants) with their values.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Looks up a symbol's value.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Number of instruction words.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }
}

/// An assembly error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// How a code word participates in the signature pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordKind {
    /// Ordinary instruction: accumulated into the running signature.
    Plain,
    /// A `sig` check: patched with the accumulated value, then resets it.
    SigCheck,
    /// A `sig` check right after a `call`: expects 0 (the `ret` reset the
    /// run-time signature), then resets the static accumulator.
    SigAfterCall,
}

#[derive(Debug, Clone)]
enum Operand {
    Reg(u8),
    Imm(i64),
    Float(f32),
    Sym(String),
    Mem { base: u8, disp: MemDisp },
}

#[derive(Debug, Clone)]
enum MemDisp {
    Imm(i64),
    Sym(String, i64),
}

#[derive(Debug, Clone)]
struct Stmt {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
}

/// A code item placed during pass 1.
#[derive(Debug, Clone)]
enum Item {
    Instr(Stmt),
    AutoSig(WordKind),
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending source line for syntax
/// errors, unknown mnemonics or symbols, out-of-range immediates or branch
/// offsets, and section overflow.
///
/// # Example
///
/// ```
/// use bera_tcpu::asm::assemble;
/// let p = assemble(".text\nstart:\n nop\n yield\n").unwrap();
/// assert!(p.code_len() >= 2);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut code_items: Vec<Item> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut data: Vec<(u32, u32)> = Vec::new();
    let mut code_labels: Vec<(String, usize, usize)> = Vec::new(); // (name, item index, line)

    #[derive(PartialEq)]
    enum Section {
        Text,
        Data,
    }
    let mut section = Section::Text;
    let mut data_addr: u32 = RAM_BASE;

    // ---- Pass 1: parse, place data, record label positions ----
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = strip_comment(raw).trim().to_string();
        if text.is_empty() {
            continue;
        }
        let mut rest = text.as_str();

        // Labels (possibly several) at the start of the line.
        while let Some(colon) = find_label_colon(rest) {
            let name = rest[..colon].trim();
            if !is_ident(name) {
                return err(line, format!("invalid label name `{name}`"));
            }
            match section {
                Section::Text => {
                    // Close the fall-through block with a signature check.
                    code_items.push(Item::AutoSig(WordKind::SigCheck));
                    code_labels.push((name.to_string(), code_items.len(), line));
                }
                Section::Data => {
                    if symbols.insert(name.to_string(), data_addr).is_some() {
                        return err(line, format!("duplicate symbol `{name}`"));
                    }
                }
            }
            rest = rest[colon + 1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = split_first_word(directive);
            match name {
                "text" => section = Section::Text,
                "data" => {
                    section = Section::Data;
                    if !args.is_empty() {
                        data_addr = parse_int(args.trim(), line)? as u32;
                    }
                }
                "equ" => {
                    let parts: Vec<&str> = args.splitn(2, ',').map(str::trim).collect();
                    if parts.len() != 2 || !is_ident(parts[0]) {
                        return err(line, ".equ NAME, value");
                    }
                    let value = parse_int(parts[1], line)? as u32;
                    if symbols.insert(parts[0].to_string(), value).is_some() {
                        return err(line, format!("duplicate symbol `{}`", parts[0]));
                    }
                }
                "word" => {
                    if section != Section::Data {
                        return err(line, ".word only valid in .data");
                    }
                    for v in args.split(',') {
                        let w = parse_int(v.trim(), line)? as u32;
                        push_data(&mut data, &mut data_addr, w, line)?;
                    }
                }
                "float" => {
                    if section != Section::Data {
                        return err(line, ".float only valid in .data");
                    }
                    for v in args.split(',') {
                        let f: f32 = v.trim().parse().map_err(|_| AsmError {
                            line,
                            message: format!("invalid float `{}`", v.trim()),
                        })?;
                        push_data(&mut data, &mut data_addr, f.to_bits(), line)?;
                    }
                }
                other => return err(line, format!("unknown directive `.{other}`")),
            }
            continue;
        }

        if section != Section::Text {
            return err(line, "instructions only valid in .text");
        }
        let stmt = parse_stmt(rest, line)?;
        let is_call = stmt.mnemonic == "call";
        code_items.push(Item::Instr(stmt));
        if is_call {
            // The return resets the run-time signature: resynchronise.
            code_items.push(Item::AutoSig(WordKind::SigAfterCall));
        }
    }

    // ---- Layout: assign word addresses to items ----
    let mut item_addr: Vec<u32> = Vec::with_capacity(code_items.len());
    let mut pc = ROM_BASE;
    for item in &code_items {
        item_addr.push(pc);
        let words = match item {
            Item::Instr(s) => instr_words(&s.mnemonic),
            Item::AutoSig(_) => 1,
        };
        pc += 4 * words as u32;
        if pc > ROM_BASE + ROM_SIZE {
            return err(0, "code does not fit in ROM");
        }
    }
    let code_end = pc;

    // Bind code labels (a label binds to the item *after* its auto-sig).
    for (name, item_index, line) in code_labels {
        let addr = if item_index < code_items.len() {
            item_addr[item_index]
        } else {
            code_end
        };
        if symbols.insert(name.clone(), addr).is_some() {
            return err(line, format!("duplicate symbol `{name}`"));
        }
    }

    // ---- Pass 2: encode ----
    let mut code: Vec<u32> = Vec::new();
    let mut kinds: Vec<WordKind> = Vec::new();
    for (item, &addr) in code_items.iter().zip(item_addr.iter()) {
        match item {
            Item::AutoSig(kind) => {
                code.push(isa::encode_i(Opcode::Sig, 0, 0, 0));
                kinds.push(*kind);
            }
            Item::Instr(stmt) => {
                encode_stmt(stmt, addr, &symbols, &mut code, &mut kinds)?;
            }
        }
    }

    // ---- Signature pass: patch `sig` immediates ----
    let mut acc: u16 = 0;
    for (word, kind) in code.iter_mut().zip(kinds.iter()) {
        match kind {
            WordKind::Plain => acc = isa::signature_step(acc, *word),
            WordKind::SigCheck => {
                *word = isa::encode_i(Opcode::Sig, 0, 0, acc as i32);
                acc = 0;
            }
            WordKind::SigAfterCall => {
                *word = isa::encode_i(Opcode::Sig, 0, 0, 0);
                acc = 0;
            }
        }
    }

    let entry = symbols.get("start").copied().unwrap_or(ROM_BASE);
    Ok(Program {
        code,
        code_base: ROM_BASE,
        entry,
        data,
        symbols,
    })
}

fn push_data(
    data: &mut Vec<(u32, u32)>,
    addr: &mut u32,
    word: u32,
    line: usize,
) -> Result<(), AsmError> {
    let a = *addr;
    let in_ram = (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&a)
        || (STACK_BASE..STACK_BASE + STACK_SIZE).contains(&a);
    if !in_ram || !a.is_multiple_of(4) {
        return err(line, format!("data address {a:#x} invalid"));
    }
    data.push((a, word));
    *addr += 4;
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the colon terminating a leading label, if any.
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    (is_ident(head.trim()) && !head.trim().is_empty()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_first_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid integer `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<u8, AsmError> {
    let t = s.trim().to_ascii_lowercase();
    let t = match t.as_str() {
        "sp" => return Ok(isa::REG_SP),
        "lr" => return Ok(isa::REG_LR),
        _ => t,
    };
    if let Some(n) = t.strip_prefix('r') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 16 {
                return Ok(i);
            }
        }
    }
    err(line, format!("invalid register `{s}`"))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let t = s.trim();
    if t.starts_with('[') {
        if !t.ends_with(']') {
            return err(line, format!("unterminated memory operand `{t}`"));
        }
        let inner = &t[1..t.len() - 1];
        let (base_str, disp) = match inner.find(['+', '-']) {
            None => (inner, MemDisp::Imm(0)),
            Some(i) => {
                let sign = if inner.as_bytes()[i] == b'-' { -1 } else { 1 };
                let rest = inner[i + 1..].trim();
                let disp = if rest
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                {
                    MemDisp::Sym(rest.to_string(), sign)
                } else {
                    MemDisp::Imm(sign * parse_int(rest, line)?)
                };
                (&inner[..i], disp)
            }
        };
        return Ok(Operand::Mem {
            base: parse_reg(base_str, line)?,
            disp,
        });
    }
    if t.eq_ignore_ascii_case("sp") || t.eq_ignore_ascii_case("lr") {
        return Ok(Operand::Reg(parse_reg(t, line)?));
    }
    let lower = t.to_ascii_lowercase();
    if lower.starts_with('r') && lower[1..].chars().all(|c| c.is_ascii_digit()) && lower.len() <= 3
    {
        return Ok(Operand::Reg(parse_reg(t, line)?));
    }
    if t.contains('.') && !t.starts_with("0x") && !t.starts_with("0X") {
        if let Ok(f) = t.parse::<f32>() {
            return Ok(Operand::Float(f));
        }
    }
    if t.starts_with('-') || t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Ok(Operand::Imm(parse_int(t, line)?));
    }
    if is_ident(t) {
        return Ok(Operand::Sym(t.to_string()));
    }
    err(line, format!("invalid operand `{t}`"))
}

fn parse_stmt(s: &str, line: usize) -> Result<Stmt, AsmError> {
    let (mn, rest) = split_first_word(s);
    let mnemonic = mn.to_ascii_lowercase();
    let mut operands = Vec::new();
    let rest = rest.trim();
    if !rest.is_empty() {
        for part in rest.split(',') {
            operands.push(parse_operand(part, line)?);
        }
    }
    Ok(Stmt {
        line,
        mnemonic,
        operands,
    })
}

/// Number of machine words a mnemonic expands to.
fn instr_words(mnemonic: &str) -> usize {
    match mnemonic {
        "li" | "la" | "lif" => 2,
        _ => 1,
    }
}

fn resolve(sym: &str, symbols: &HashMap<String, u32>, line: usize) -> Result<u32, AsmError> {
    symbols.get(sym).copied().ok_or_else(|| AsmError {
        line,
        message: format!("undefined symbol `{sym}`"),
    })
}

#[allow(clippy::too_many_lines)]
fn encode_stmt(
    stmt: &Stmt,
    addr: u32,
    symbols: &HashMap<String, u32>,
    code: &mut Vec<u32>,
    kinds: &mut Vec<WordKind>,
) -> Result<(), AsmError> {
    let line = stmt.line;
    let ops = &stmt.operands;

    let reg = |i: usize| -> Result<u8, AsmError> {
        match ops.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => err(line, format!("operand {} must be a register", i + 1)),
        }
    };
    let value = |i: usize| -> Result<i64, AsmError> {
        match ops.get(i) {
            Some(Operand::Imm(v)) => Ok(*v),
            Some(Operand::Sym(s)) => Ok(resolve(s, symbols, line)? as i64),
            _ => err(line, format!("operand {} must be a value", i + 1)),
        }
    };
    let mem = |i: usize| -> Result<(u8, i64), AsmError> {
        match ops.get(i) {
            Some(Operand::Mem { base, disp }) => {
                let d = match disp {
                    MemDisp::Imm(v) => *v,
                    MemDisp::Sym(s, sign) => sign * resolve(s, symbols, line)? as i64,
                };
                Ok((*base, d))
            }
            _ => err(line, format!("operand {} must be a memory operand", i + 1)),
        }
    };
    let imm16s = |v: i64| -> Result<i32, AsmError> {
        if (-32768..=32767).contains(&v) {
            Ok(v as i32)
        } else {
            err(line, format!("immediate {v} out of signed 16-bit range"))
        }
    };
    let imm16u = |v: i64| -> Result<i32, AsmError> {
        if (0..=0xFFFF).contains(&v) {
            Ok(v as i32)
        } else {
            err(line, format!("immediate {v} out of unsigned 16-bit range"))
        }
    };
    let expect = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!(
                    "`{}` takes {} operand(s), got {}",
                    stmt.mnemonic,
                    n,
                    ops.len()
                ),
            )
        }
    };

    let mut push = |word: u32| {
        code.push(word);
        kinds.push(WordKind::Plain);
    };

    use Opcode::*;
    match stmt.mnemonic.as_str() {
        "nop" => {
            expect(0)?;
            push(isa::encode_r(Nop, 0, 0, 0));
        }
        "halt" => {
            expect(0)?;
            push(isa::encode_r(Halt, 0, 0, 0));
        }
        "yield" => {
            expect(0)?;
            push(isa::encode_r(Yield, 0, 0, 0));
        }
        "ret" => {
            expect(0)?;
            push(isa::encode_r(Ret, 0, 0, 0));
        }
        "sig" => {
            expect(0)?;
            code.push(isa::encode_i(Sig, 0, 0, 0));
            kinds.push(WordKind::SigCheck);
        }
        "lif" => {
            expect(2)?;
            let rd = reg(0)?;
            let v = match ops.get(1) {
                Some(Operand::Float(f)) => f.to_bits(),
                Some(Operand::Imm(i)) => (*i as f64 as f32).to_bits(),
                _ => return err(line, "lif takes a float immediate"),
            };
            push(isa::encode_i(Lui, rd, 0, ((v >> 16) & 0xFFFF) as i32));
            push(isa::encode_i(Ori, rd, rd, (v & 0xFFFF) as i32));
        }
        "li" | "la" => {
            expect(2)?;
            let rd = reg(0)?;
            let v = value(1)? as u32;
            push(isa::encode_i(Lui, rd, 0, ((v >> 16) & 0xFFFF) as i32));
            push(isa::encode_i(Ori, rd, rd, (v & 0xFFFF) as i32));
        }
        "lui" => {
            expect(2)?;
            push(isa::encode_i(Lui, reg(0)?, 0, imm16u(value(1)?)?));
        }
        "ori" => {
            expect(3)?;
            push(isa::encode_i(Ori, reg(0)?, reg(1)?, imm16u(value(2)?)?));
        }
        "addi" => {
            expect(3)?;
            push(isa::encode_i(Addi, reg(0)?, reg(1)?, imm16s(value(2)?)?));
        }
        "ld" | "st" => {
            expect(2)?;
            let r = reg(0)?;
            let (base, disp) = mem(1)?;
            let op = if stmt.mnemonic == "ld" { Ld } else { St };
            push(isa::encode_i(op, r, base, imm16s(disp)?));
        }
        "add" | "sub" | "mul" | "div" | "and" | "or" | "xor" | "shl" | "shr" | "fadd" | "fsub"
        | "fmul" | "fdiv" | "chk" => {
            expect(3)?;
            let op = match stmt.mnemonic.as_str() {
                "add" => Add,
                "sub" => Sub,
                "mul" => Mul,
                "div" => Div,
                "and" => And,
                "or" => Or,
                "xor" => Xor,
                "shl" => Shl,
                "shr" => Shr,
                "fadd" => Fadd,
                "fsub" => Fsub,
                "fmul" => Fmul,
                "fdiv" => Fdiv,
                _ => Chk,
            };
            push(isa::encode_r(op, reg(0)?, reg(1)?, reg(2)?));
        }
        "fcmp" | "cmp" => {
            expect(2)?;
            let op = if stmt.mnemonic == "fcmp" { Fcmp } else { Cmp };
            push(isa::encode_r(op, 0, reg(0)?, reg(1)?));
        }
        "mov" | "itof" | "ftoi" => {
            expect(2)?;
            let op = match stmt.mnemonic.as_str() {
                "mov" => Mov,
                "itof" => Itof,
                _ => Ftoi,
            };
            push(isa::encode_r(op, reg(0)?, reg(1)?, 0));
        }
        "beq" | "bne" | "blt" | "bge" | "bgt" | "ble" => {
            expect(1)?;
            let target = value(0)? as u32;
            let off = (i64::from(target) - i64::from(addr) - 4) / 4;
            if (i64::from(target) - i64::from(addr) - 4) % 4 != 0 {
                return err(line, "branch target misaligned");
            }
            let off = imm16s(off)?;
            let op = match stmt.mnemonic.as_str() {
                "beq" => Beq,
                "bne" => Bne,
                "blt" => Blt,
                "bge" => Bge,
                "bgt" => Bgt,
                _ => Ble,
            };
            push(isa::encode_i(op, 0, 0, off));
        }
        "jmp" | "call" => {
            expect(1)?;
            let target = value(0)? as u32;
            if !target.is_multiple_of(4) || target / 4 > 0x3F_FFFF {
                return err(line, format!("jump target {target:#x} unencodable"));
            }
            let op = if stmt.mnemonic == "jmp" { Jmp } else { Call };
            push(isa::encode_j(op, target / 4));
        }
        "in" | "out" => {
            expect(2)?;
            let op = if stmt.mnemonic == "in" { In } else { Out };
            push(isa::encode_i(op, reg(0)?, 0, imm16u(value(1)?)?));
        }
        "setsb" => {
            expect(2)?;
            push(isa::encode_r(Setsb, 0, reg(0)?, reg(1)?));
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::decode;

    #[test]
    fn empty_program() {
        let p = assemble("").unwrap();
        assert_eq!(p.code_len(), 0);
        assert_eq!(p.entry, ROM_BASE);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = assemble("; nothing\n\n   # also nothing\n.text\n nop ; trailing\n").unwrap();
        assert_eq!(p.code_len(), 1);
    }

    #[test]
    fn li_expands_to_two_words() {
        let p = assemble(".text\n li r3, 0x12345678\n").unwrap();
        assert_eq!(p.code_len(), 2);
        let d0 = decode(p.code[0]).unwrap();
        let d1 = decode(p.code[1]).unwrap();
        assert_eq!(d0.op, Opcode::Lui);
        assert_eq!(d0.uimm16, 0x1234);
        assert_eq!(d1.op, Opcode::Ori);
        assert_eq!(d1.uimm16, 0x5678);
    }

    #[test]
    fn start_label_sets_entry() {
        let p = assemble(".text\n nop\nstart:\n yield\n").unwrap();
        // Entry skips the nop and the auto-sig before `start`.
        assert_eq!(p.entry, ROM_BASE + 8);
    }

    #[test]
    fn labels_get_auto_sig() {
        let p = assemble(".text\nstart:\n nop\nloop:\n jmp loop\n").unwrap();
        // sig, nop, sig, jmp
        assert_eq!(p.code_len(), 4);
        assert_eq!(decode(p.code[0]).unwrap().op, Opcode::Sig);
        assert_eq!(decode(p.code[2]).unwrap().op, Opcode::Sig);
    }

    #[test]
    fn signature_values_match_accumulation() {
        let p = assemble(".text\nstart:\n nop\n nop\nnext:\n yield\n").unwrap();
        // Words: sig(0), nop, nop, sig(acc over both nops), yield.
        let d = decode(p.code[0]).unwrap();
        assert_eq!(d.uimm16, 0, "first check expects a fresh signature");
        let nop = p.code[1];
        let expected = isa::signature_step(isa::signature_step(0, nop), nop);
        let d3 = decode(p.code[3]).unwrap();
        assert_eq!(d3.uimm16, u32::from(expected));
    }

    #[test]
    fn data_section_words_and_floats() {
        let p = assemble(".data 0x10010\nk: .float 70.0\nv: .word 5, 6\n").unwrap();
        assert_eq!(p.symbol("k"), Some(0x10010));
        assert_eq!(p.symbol("v"), Some(0x10014));
        assert_eq!(
            p.data,
            vec![(0x10010, 70.0f32.to_bits()), (0x10014, 5), (0x10018, 6)]
        );
    }

    #[test]
    fn equ_constants_resolve() {
        let p = assemble(".equ BASE, 0x10000\n.text\n li r1, BASE\n").unwrap();
        let d1 = decode(p.code[1]).unwrap();
        assert_eq!(d1.uimm16, 0); // low half of 0x10000
        let d0 = decode(p.code[0]).unwrap();
        assert_eq!(d0.uimm16, 1); // high half
    }

    #[test]
    fn memory_operand_symbolic_offset() {
        let src = ".equ OFF, 8\n.text\n ld r2, [r1+OFF]\n st r2, [r1-4]\n";
        let p = assemble(src).unwrap();
        let d0 = decode(p.code[0]).unwrap();
        assert_eq!((d0.op, d0.imm16), (Opcode::Ld, 8));
        let d1 = decode(p.code[1]).unwrap();
        assert_eq!((d1.op, d1.imm16), (Opcode::St, -4));
    }

    #[test]
    fn branch_offsets_resolve_both_directions() {
        let src = ".text\nstart:\n nop\n beq start\n bne fwd\n nop\nfwd:\n yield\n";
        let p = assemble(src).unwrap();
        // Layout: sig start nop beq bne nop sig yield
        let beq = decode(p.code[2]).unwrap();
        assert_eq!(beq.op, Opcode::Beq);
        // start = word 1; beq at word 2 → offset = 1 - (2+1) = -2.
        assert_eq!(beq.imm16, -2);
        let bne = decode(p.code[3]).unwrap();
        // fwd label binds after auto-sig at word 6... the label points at
        // word 6 (sig) + 1 = 7? fwd = address of item after its auto-sig.
        assert_eq!(bne.op, Opcode::Bne);
        assert!(bne.imm16 > 0);
    }

    #[test]
    fn call_inserts_resync_sig() {
        let p = assemble(".text\nstart:\n call fn\n yield\nfn:\n ret\n").unwrap();
        // Words: sig, call, sig(aftercall), yield, sig, ret.
        assert_eq!(decode(p.code[2]).unwrap().op, Opcode::Sig);
        assert_eq!(decode(p.code[2]).unwrap().uimm16, 0);
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = assemble(".text\n frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn error_undefined_symbol() {
        let e = assemble(".text\n jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn error_bad_register() {
        let e = assemble(".text\n mov r16, r1\n").unwrap_err();
        assert!(e.message.contains("register") || e.message.contains("r16"));
    }

    #[test]
    fn error_immediate_out_of_range() {
        let e = assemble(".text\n addi r1, r1, 40000\n").unwrap_err();
        assert!(e.message.contains("range"));
    }

    #[test]
    fn error_duplicate_label() {
        let e = assemble(".text\na:\n nop\na:\n nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn error_data_outside_ram() {
        let e = assemble(".data 0x5000\n .word 1\n").unwrap_err();
        assert!(e.message.contains("invalid"));
    }

    #[test]
    fn sp_and_lr_aliases() {
        let p = assemble(".text\n mov sp, lr\n").unwrap();
        let d = decode(p.code[0]).unwrap();
        assert_eq!(d.rd, isa::REG_SP);
        assert_eq!(d.ra, isa::REG_LR);
    }

    #[test]
    fn explicit_sig_statement() {
        let p = assemble(".text\n nop\n sig\n nop\n").unwrap();
        let d = decode(p.code[1]).unwrap();
        assert_eq!(d.op, Opcode::Sig);
        let nop = p.code[0];
        assert_eq!(d.uimm16, u32::from(isa::signature_step(0, nop)));
    }
}
