//! Cheap state digests for convergence detection.
//!
//! Checkpointed fault-injection campaigns need to ask, at every iteration
//! boundary, "has this faulty machine returned to the golden trajectory?".
//! Comparing full machine state is exact but touches tens of kilobytes; a
//! 64-bit FNV-1a digest over the architectural state answers "definitely
//! not equal" in one word compare almost always, so the full comparison
//! only runs on digest match. The digest is a *filter*, never a proof —
//! callers must confirm with [`crate::Machine::state_equals`] before
//! acting on a match.

/// Incremental FNV-1a 64-bit hasher.
///
/// FNV-1a is not cryptographic; it is chosen for speed and determinism
/// across platforms (no pointer hashing, no randomized state).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher in its initial state.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// Absorbs a 32-bit word, little-endian.
    pub fn write_u32(&mut self, w: u32) {
        for b in w.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs a 64-bit word, little-endian.
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a slice of 32-bit words.
    pub fn write_u32_slice(&mut self, words: &[u32]) {
        for &w in words {
            self.write_u32(w);
        }
    }

    /// The digest of everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::Fnv64;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let empty = Fnv64::new();
        assert_eq!(empty.finish(), 0xcbf2_9ce4_8422_2325);
        let mut a = Fnv64::new();
        a.write_bytes(b"a");
        assert_eq!(a.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut foobar = Fnv64::new();
        foobar.write_bytes(b"foobar");
        assert_eq!(foobar.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn word_writes_equal_byte_writes() {
        let mut by_word = Fnv64::new();
        by_word.write_u32(0x0403_0201);
        let mut by_byte = Fnv64::new();
        by_byte.write_bytes(&[1, 2, 3, 4]);
        assert_eq!(by_word.finish(), by_byte.finish());
    }

    #[test]
    fn order_sensitive() {
        let mut ab = Fnv64::new();
        ab.write_u8(1);
        ab.write_u8(2);
        let mut ba = Fnv64::new();
        ba.write_u8(2);
        ba.write_u8(1);
        assert_ne!(ab.finish(), ba.finish());
    }
}
