//! EDM-visibility tracing — analytic coverage for the *untraceable* set.
//!
//! The def/use access trace ([`crate::access`]) covers state whose every
//! semantic access flows through an explicit hook: registers, cache data
//! words, ports, save slots, memory words. Everything else — PC, PSR,
//! signature register, pipeline latches, cache tags/flags, the store/fill
//! buffers, stack bounds, EDAC syndrome — is consulted *asynchronously*
//! by the pipeline and the error detection mechanisms, so PR-4's planner
//! and PR-5's lockstep batch engine had to simulate every fault landing
//! there (~28 % of multi-bit candidates).
//!
//! This module closes most of that gap with a second, coarser trace: the
//! golden run records, per [`VisUnit`], the **visibility windows** in
//! which each asynchronous observer actually samples that state. The
//! hooks live at the (few, enumerable) consult sites:
//!
//! * the fetch path: `fill_latch` reads the PC and deposits a whole new
//!   fetch latch; every instruction consumes the latch word and PC;
//! * branches read exactly the PSR flag(s) their condition consults
//!   (`beq`/`bne` the EQ bit, `blt`/`bge` the LT bit, `bgt`/`ble` both),
//!   and `cmp`/`fcmp` deposit both flags full-width;
//! * a control transfer overwrites the PC and zeroes the signature
//!   register **unconditionally** — a value-independent full write, the
//!   one sound kill for signature flips (the per-instruction
//!   `signature_step` folding is a read-modify-write that *morphs* a
//!   flip rather than observing or clearing it, so it is deliberately
//!   not an event: a signature fault is only ever claimed `Overwritten`
//!   when a transfer's zeroing precedes every `sig` compare);
//! * the cache hit check reads a line's valid bit on every access, its
//!   tag only while the line is valid, and its dirty bit only on a miss
//!   of a valid line (the short-circuit order of the real consult);
//!   a line fill overwrites tag/valid/dirty, a store overwrites dirty;
//! * a line fill reads the EDAC syndrome and deposits a whole fill
//!   buffer per word; a store deposits a whole store buffer;
//! * a stack-region data access reads both stack-bound registers;
//! * the register write-back deposits a whole result latch; `epc`/
//!   `cause` are written only by the trap path.
//!
//! A fault in a [`VisUnit`] whose recorded events never sample it is
//! *latent*; one whose first event is a full-width deposit is
//! *overwritten* — exactly the def/use argument, transplanted to the
//! asynchronous observers. Units for which the golden-value-⊕-flip
//! representation stays exact between events ([`VisUnit::batch_inert`])
//! are additionally admissible to the lockstep batch engine, which
//! widens `batch_eligible` to the previously rejected population.
//!
//! Two state elements remain opaque by design: the fetch-latch valid bit
//! (consulted every instruction to decide whether to fetch — no window
//! exists) and the operand latch (a shift register whose flips *migrate*
//! between its two slots; the planner resolves those with the value-level
//! shift count recorded in [`VisTrace::shifts`], but they never batch).

use crate::access::{Access, AccessKind};
use crate::cache;
use crate::scan::BitLocation;

/// A unit of *untraceable* architectural state with a dense index, the
/// visibility-window analogue of [`crate::access::TraceUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisUnit {
    /// The program counter.
    Pc,
    /// One bit of the processor status register (bits are independently
    /// read and written: branches consult exactly one or two of them).
    Psr(u8),
    /// The control-flow signature register. **Not** batch-inert: the
    /// per-instruction signature folding evolves a flipped value, so
    /// `golden ⊕ flip` stops describing the faulty state after one
    /// instruction. Planner-only, and only the write-first rule is sound.
    Sig,
    /// The fetch-latch instruction word.
    FetchWord,
    /// The fetch-latch instruction address.
    FetchPc,
    /// The write-back result latch (value + rd + we, deposited whole).
    Exwb,
    /// The store buffer (addr + data + valid, deposited whole).
    Sbuf,
    /// The fill buffer (addr + data + parity + valid, deposited whole).
    Fbuf,
    /// The trap bookkeeping registers `epc` + `cause` (written only by
    /// the trap path, never consulted at run time).
    EpcCause,
    /// The EDAC syndrome register (read by every line fill).
    EdacSyndrome,
    /// The lower stack bound (read by stack-region accesses).
    StackLo,
    /// The upper stack bound (read by stack-region accesses).
    StackHi,
    /// One cache line's tag.
    CacheTag(usize),
    /// One cache line's valid flag.
    CacheValid(usize),
    /// One cache line's dirty flag.
    CacheDirty(usize),
}

/// Non-per-line units: Pc + 8 PSR bits + Sig + FetchWord + FetchPc +
/// Exwb + Sbuf + Fbuf + EpcCause + EdacSyndrome + StackLo + StackHi.
const SCALAR_UNITS: usize = 19;

impl VisUnit {
    /// Total number of visibility units.
    pub const COUNT: usize = SCALAR_UNITS + 3 * cache::NUM_LINES;

    /// Dense index of this unit in `0..VisUnit::COUNT`.
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            VisUnit::Pc => 0,
            VisUnit::Psr(b) => 1 + b as usize,
            VisUnit::Sig => 9,
            VisUnit::FetchWord => 10,
            VisUnit::FetchPc => 11,
            VisUnit::Exwb => 12,
            VisUnit::Sbuf => 13,
            VisUnit::Fbuf => 14,
            VisUnit::EpcCause => 15,
            VisUnit::EdacSyndrome => 16,
            VisUnit::StackLo => 17,
            VisUnit::StackHi => 18,
            VisUnit::CacheTag(l) => SCALAR_UNITS + l,
            VisUnit::CacheValid(l) => SCALAR_UNITS + cache::NUM_LINES + l,
            VisUnit::CacheDirty(l) => SCALAR_UNITS + 2 * cache::NUM_LINES + l,
        }
    }

    /// `true` when a flip in this unit stays exactly `golden ⊕ flip`
    /// between recorded events, so the lockstep batch engine may carry it
    /// as a copy-on-write delta and [`crate::machine::Machine::scan_flip`]
    /// rematerializes it faithfully. Everything except the signature
    /// register qualifies: between events nothing reads these units *and*
    /// nothing rewrites them in place, whereas the signature register is
    /// folded (read-modify-written) by every executed instruction.
    #[must_use]
    pub fn batch_inert(&self) -> bool {
        !matches!(self, VisUnit::Sig)
    }
}

impl BitLocation {
    /// The visibility unit governing this bit, or `None` when the bit is
    /// either covered by the ordinary access trace
    /// ([`BitLocation::trace_unit`] returns `Some`) or genuinely opaque
    /// (the fetch-latch valid bit, the operand latch).
    #[must_use]
    pub fn vis_unit(&self) -> Option<VisUnit> {
        match *self {
            BitLocation::Pc { .. } => Some(VisUnit::Pc),
            BitLocation::Psr { bit } => Some(VisUnit::Psr(bit)),
            BitLocation::SigReg { .. } => Some(VisUnit::Sig),
            BitLocation::FetchWord { .. } => Some(VisUnit::FetchWord),
            BitLocation::FetchPc { .. } => Some(VisUnit::FetchPc),
            BitLocation::ResultValue { .. }
            | BitLocation::ResultRd { .. }
            | BitLocation::ResultWe => Some(VisUnit::Exwb),
            BitLocation::StoreBufAddr { .. }
            | BitLocation::StoreBufData { .. }
            | BitLocation::StoreBufValid => Some(VisUnit::Sbuf),
            BitLocation::FillBufAddr { .. }
            | BitLocation::FillBufData { .. }
            | BitLocation::FillBufParity
            | BitLocation::FillBufValid => Some(VisUnit::Fbuf),
            BitLocation::Epc { .. } | BitLocation::Cause { .. } => Some(VisUnit::EpcCause),
            BitLocation::EdacSyndrome { .. } => Some(VisUnit::EdacSyndrome),
            BitLocation::StackLo { .. } => Some(VisUnit::StackLo),
            BitLocation::StackHi { .. } => Some(VisUnit::StackHi),
            BitLocation::CacheTag { line, .. } => Some(VisUnit::CacheTag(line as usize)),
            BitLocation::CacheValid { line } => Some(VisUnit::CacheValid(line as usize)),
            BitLocation::CacheDirty { line } => Some(VisUnit::CacheDirty(line as usize)),
            // Traceable via the access trace, or opaque by design
            // (FetchValid is consulted every instruction; the operand
            // latch shifts — see the module docs).
            _ => None,
        }
    }
}

/// The visibility-window trace of one golden run: per [`VisUnit`], the
/// ordered instants at which an asynchronous observer sampled (`Read`) or
/// fully deposited (`Write`) that unit, plus the operand-latch shift
/// instants for the planner's value-level rule.
#[derive(Debug, Clone, PartialEq)]
pub struct VisTrace {
    units: Vec<Vec<Access>>,
    shifts: Vec<u64>,
}

impl Default for VisTrace {
    fn default() -> Self {
        VisTrace::new()
    }
}

impl VisTrace {
    /// An empty trace covering every unit.
    #[must_use]
    pub fn new() -> Self {
        VisTrace {
            units: vec![Vec::new(); VisUnit::COUNT],
            shifts: Vec::new(),
        }
    }

    /// Appends an event. Entries for one unit must arrive in
    /// non-decreasing `at` order (they do, when recorded during
    /// execution); [`VisTrace::first_at_or_after`] relies on it.
    pub fn record(&mut self, unit: VisUnit, at: u64, kind: AccessKind) {
        let slot = &mut self.units[unit.index()];
        debug_assert!(slot.last().is_none_or(|a| a.at <= at), "trace not sorted");
        slot.push(Access { at, kind });
    }

    /// Appends an operand-latch shift instant (each `read_reg` shifts the
    /// latch: `a ← b`, `b ← value`).
    pub fn record_shift(&mut self, at: u64) {
        debug_assert!(self.shifts.last().is_none_or(|&s| s <= at));
        self.shifts.push(at);
    }

    /// All events of `unit`, in execution order.
    #[must_use]
    pub fn accesses(&self, unit: VisUnit) -> &[Access] {
        &self.units[unit.index()]
    }

    /// The first event of `unit` visible to a fault injected at boundary
    /// `inject_at` (first entry with `at >= inject_at`), or `None`.
    #[must_use]
    pub fn first_at_or_after(&self, unit: VisUnit, inject_at: u64) -> Option<Access> {
        let slot = &self.units[unit.index()];
        let i = slot.partition_point(|a| a.at < inject_at);
        slot.get(i).copied()
    }

    /// Number of operand-latch shifts visible to a fault injected at
    /// boundary `inject_at` (shift instants `>= inject_at`).
    #[must_use]
    pub fn shifts_at_or_after(&self, inject_at: u64) -> usize {
        self.shifts.len() - self.shifts.partition_point(|&s| s < inject_at)
    }

    /// Total number of recorded events, across all units (shifts
    /// excluded).
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.units.iter().map(Vec::len).sum()
    }

    /// Mutates the trace (for adversarial tests): inserts `access` into
    /// `unit`'s slot at its sorted position — the "one extra EDM sample"
    /// of the soundness proptests.
    pub fn insert_for_test(&mut self, unit: VisUnit, access: Access) {
        let slot = &mut self.units[unit.index()];
        let i = slot.partition_point(|a| a.at <= access.at);
        slot.insert(i, access);
    }

    /// Mutates the kind of the event at position `i` of `unit`'s slot
    /// (for adversarial tests — demoting a kill shrinks the window).
    pub fn set_kind_for_test(&mut self, unit: VisUnit, i: usize, kind: AccessKind) {
        self.units[unit.index()][i].kind = kind;
    }

    /// Removes the event at position `i` of `unit`'s slot (for
    /// adversarial tests — deleting a boundary shrinks the window).
    pub fn remove_for_test(&mut self, unit: VisUnit, i: usize) {
        self.units[unit.index()].remove(i);
    }
}

/// The machine's optional visibility recorder. Behaviourally inert
/// exactly like [`crate::access::TraceSlot`]: clones of a tracing machine
/// do not trace, equality ignores it, and it serializes as `null`.
#[derive(Debug, Default)]
pub(crate) struct VisSlot(pub(crate) Option<Box<VisTrace>>);

impl Clone for VisSlot {
    fn clone(&self) -> Self {
        VisSlot(None)
    }
}

impl PartialEq for VisSlot {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for VisSlot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for VisSlot {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(VisSlot::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;

    #[test]
    fn unit_indices_are_dense_and_unique() {
        let mut units: Vec<VisUnit> = vec![VisUnit::Pc];
        for b in 0..8 {
            units.push(VisUnit::Psr(b));
        }
        units.extend([
            VisUnit::Sig,
            VisUnit::FetchWord,
            VisUnit::FetchPc,
            VisUnit::Exwb,
            VisUnit::Sbuf,
            VisUnit::Fbuf,
            VisUnit::EpcCause,
            VisUnit::EdacSyndrome,
            VisUnit::StackLo,
            VisUnit::StackHi,
        ]);
        for l in 0..cache::NUM_LINES {
            units.push(VisUnit::CacheTag(l));
            units.push(VisUnit::CacheValid(l));
            units.push(VisUnit::CacheDirty(l));
        }
        assert_eq!(units.len(), VisUnit::COUNT);
        let mut seen = [false; VisUnit::COUNT];
        for u in units {
            let i = u.index();
            assert!(!seen[i], "duplicate index {i} for {u:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn every_catalog_bit_is_traceable_visible_or_known_opaque() {
        // The catalog partitions exactly: each bit has a trace unit, or a
        // visibility unit, or is one of the two deliberately opaque
        // elements (fetch-valid, operand latch).
        for &loc in scan::catalog() {
            let traced = loc.trace_unit().is_some();
            let vis = loc.vis_unit().is_some();
            assert!(!(traced && vis), "{loc:?} must not be doubly covered");
            if !traced && !vis {
                assert!(
                    matches!(
                        loc,
                        BitLocation::FetchValid
                            | BitLocation::OperandA { .. }
                            | BitLocation::OperandB { .. }
                    ),
                    "{loc:?} is neither traced, visible, nor known-opaque"
                );
            }
        }
    }

    #[test]
    fn only_the_signature_register_is_batch_opaque() {
        for &loc in scan::catalog() {
            if let Some(u) = loc.vis_unit() {
                assert_eq!(
                    u.batch_inert(),
                    !matches!(loc, BitLocation::SigReg { .. }),
                    "{loc:?}"
                );
            }
        }
    }

    #[test]
    fn first_at_or_after_and_shift_counts() {
        let mut t = VisTrace::new();
        t.record(VisUnit::Pc, 5, AccessKind::Read);
        t.record(VisUnit::Pc, 9, AccessKind::Write);
        t.record_shift(3);
        t.record_shift(7);
        t.record_shift(7);
        assert_eq!(
            t.first_at_or_after(VisUnit::Pc, 6),
            Some(Access {
                at: 9,
                kind: AccessKind::Write
            })
        );
        assert_eq!(t.first_at_or_after(VisUnit::Pc, 10), None);
        assert_eq!(t.first_at_or_after(VisUnit::Sig, 0), None);
        assert_eq!(t.shifts_at_or_after(0), 3);
        assert_eq!(t.shifts_at_or_after(4), 2);
        assert_eq!(t.shifts_at_or_after(8), 0);
    }
}
