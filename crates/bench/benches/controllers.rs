//! Controller-step overhead: the cost of executable assertions and best
//! effort recovery (the paper's cost-effectiveness argument — Section 1
//! motivates the software approach against hardware duplication).
//!
//! Series reported:
//! * `algorithm1_step` — the plain PI controller;
//! * `algorithm2_step` — hand-written assertions + recovery;
//! * `generic_protected_step` — the Section 4.3 generic wrapper;
//! * `rate_protected_step` — the Algorithm III rate-assertion extension;
//! * `mimo_protected_step` — a 2×2 state-space controller, fully protected.

use bera_core::assertion::{All, Assertion};
use bera_core::controller::{Controller, Limits};
use bera_core::{
    MimoController, PiController, Protected, ProtectedPiController, RangeAssertion, RateAssertion,
    Siso, StateController, StateSpace,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn drive_controller<C: Controller>(c: &mut C, iters: usize) -> f64 {
    let mut y = 1900.0;
    let mut acc = 0.0;
    for k in 0..iters {
        let r = if k % 100 < 50 { 2000.0 } else { 3000.0 };
        let u = c.step(black_box(r), black_box(y));
        acc += u;
        y += (u * 40.0 - y) * 0.05;
    }
    acc
}

fn bench_controllers(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_step");

    group.bench_function("algorithm1_step", |b| {
        let mut ctrl = PiController::paper();
        b.iter(|| drive_controller(&mut ctrl, 100));
    });

    group.bench_function("algorithm2_step", |b| {
        let mut ctrl = ProtectedPiController::paper();
        b.iter(|| drive_controller(&mut ctrl, 100));
    });

    group.bench_function("generic_protected_step", |b| {
        let mut ctrl = Siso::new(
            Protected::uniform(PiController::paper(), Limits::throttle()),
            Limits::throttle(),
        );
        b.iter(|| drive_controller(&mut ctrl, 100));
    });

    group.bench_function("rate_protected_step", |b| {
        let state: Vec<Box<dyn Assertion<f64> + Send + Sync>> = vec![Box::new(All::new(
            RangeAssertion::throttle(),
            RateAssertion::new(5.0),
        ))];
        let output: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
            vec![Box::new(RangeAssertion::throttle())];
        let mut ctrl = Siso::new(
            Protected::with_assertions(PiController::paper(), state, output),
            Limits::throttle(),
        );
        b.iter(|| drive_controller(&mut ctrl, 100));
    });

    group.bench_function("mimo_protected_step", |b| {
        let mimo = MimoController::new(
            StateSpace::jet_engine_demo(),
            vec![Limits::new(0.0, 1.0); 2],
        );
        let mut ctrl = Protected::uniform(mimo, Limits::new(-10.0, 10.0));
        let mut u = [0.0f64; 2];
        b.iter(|| {
            for _ in 0..100 {
                ctrl.compute(black_box(&[0.3, -0.1]), &mut u);
            }
            u[0]
        });
    });

    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
