//! Campaign throughput: the golden reference run, a single fault-injection
//! experiment, and small end-to-end campaigns for each algorithm and
//! ablation variant — one series per table/figure-producing configuration.

use bera_bench::bench_loop_config;
use bera_goofi::campaign::{run_scifi_campaign, CampaignConfig};
use bera_goofi::experiment::{golden_run, run_experiment, FaultSpec};
use bera_goofi::swifi::{run_swifi, SwifiConfig};
use bera_goofi::workload::Workload;
use bera_core::PiController;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    let cfg = bench_loop_config(100);

    group.bench_function("golden_run_100_iterations", |b| {
        let w = Workload::algorithm_one();
        b.iter(|| golden_run(black_box(&w), &cfg));
    });

    group.bench_function("single_experiment", |b| {
        let w = Workload::algorithm_one();
        let golden = golden_run(&w, &cfg);
        let fault = FaultSpec {
            location_index: 40, // a cache data bit in x's line
            inject_at: golden.total_instructions / 2,
        };
        b.iter(|| run_experiment(black_box(&w), &cfg, &golden, fault, false));
    });

    // One series per campaign configuration used by the table binaries.
    for (label, workload, parity) in [
        ("campaign_algorithm1", Workload::algorithm_one(), false),
        ("campaign_algorithm2", Workload::algorithm_two(), false),
        ("campaign_algorithm1_parity", Workload::algorithm_one(), true),
        ("campaign_algorithm3", Workload::algorithm_three(), false),
        (
            "campaign_alg2_colocated",
            Workload::algorithm_two_colocated_backup(),
            false,
        ),
        (
            "campaign_alg2_assert_after",
            Workload::algorithm_two_assert_after_backup(),
            false,
        ),
    ] {
        group.bench_function(label, |b| {
            let mut ccfg = CampaignConfig::quick(40, 11);
            ccfg.loop_cfg = bench_loop_config(60);
            ccfg.loop_cfg.parity_cache = parity;
            ccfg.threads = 1;
            b.iter(|| run_scifi_campaign(black_box(&workload), &ccfg));
        });
    }

    group.bench_function("swifi_campaign_native", |b| {
        let cfg = SwifiConfig {
            faults: 50,
            seed: 3,
            iterations: 100,
        };
        b.iter(|| run_swifi(PiController::paper, black_box(&cfg)));
    });

    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
