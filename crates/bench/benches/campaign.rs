//! Campaign throughput: the golden reference run, a single fault-injection
//! experiment, and small end-to-end campaigns for each algorithm and
//! ablation variant — one series per table/figure-producing configuration.

use bera_bench::{bench_loop_config, bench_loop_config_checkpointed};
use bera_core::PiController;
use bera_goofi::campaign::{run_scifi_campaign, run_scifi_campaign_observed, CampaignConfig};
use bera_goofi::experiment::{golden_run, run_experiment, FaultSpec};
use bera_goofi::observer::Telemetry;
use bera_goofi::swifi::{run_swifi, SwifiConfig};
use bera_goofi::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    let cfg = bench_loop_config(100);

    group.bench_function("golden_run_100_iterations", |b| {
        let w = Workload::algorithm_one();
        b.iter(|| golden_run(black_box(&w), &cfg));
    });

    group.bench_function("single_experiment", |b| {
        let w = Workload::algorithm_one();
        let golden = golden_run(&w, &cfg);
        let fault = FaultSpec {
            location_index: 40, // a cache data bit in x's line
            inject_at: golden.total_instructions / 2,
        };
        b.iter(|| run_experiment(black_box(&w), &cfg, &golden, fault, false));
    });

    // The same experiment on the checkpointed engine: fast-forward from the
    // nearest golden checkpoint, prune the tail once converged.
    group.bench_function("checkpointed_single_experiment", |b| {
        let w = Workload::algorithm_one();
        let ckpt_cfg = bench_loop_config_checkpointed(100, 4);
        let golden = golden_run(&w, &ckpt_cfg);
        let fault = FaultSpec {
            location_index: 40,
            inject_at: golden.total_instructions / 2,
        };
        b.iter(|| run_experiment(black_box(&w), &ckpt_cfg, &golden, fault, false));
    });

    // One series per campaign configuration used by the table binaries.
    for (label, workload, parity) in [
        ("campaign_algorithm1", Workload::algorithm_one(), false),
        ("campaign_algorithm2", Workload::algorithm_two(), false),
        (
            "campaign_algorithm1_parity",
            Workload::algorithm_one(),
            true,
        ),
        ("campaign_algorithm3", Workload::algorithm_three(), false),
        (
            "campaign_alg2_colocated",
            Workload::algorithm_two_colocated_backup(),
            false,
        ),
        (
            "campaign_alg2_assert_after",
            Workload::algorithm_two_assert_after_backup(),
            false,
        ),
    ] {
        group.bench_function(label, |b| {
            let mut ccfg = CampaignConfig::quick(40, 11);
            ccfg.loop_cfg = bench_loop_config(60);
            ccfg.loop_cfg.parity_cache = parity;
            ccfg.threads = 1;
            // Historical series: every fault simulated, as before def/use
            // pruning existed. The pruned_campaign_* series below measure
            // the planner's effect against these.
            ccfg.prune = false;
            b.iter(|| run_scifi_campaign(black_box(&workload), &ccfg));
        });
    }

    // Def/use-pruned counterparts of the two headline campaigns, on the
    // checkpointed engine: the fully-optimised configuration the speedup
    // table reports (see also `bench_campaign --json`).
    for (label, workload) in [
        ("pruned_campaign_algorithm1", Workload::algorithm_one()),
        ("pruned_campaign_algorithm2", Workload::algorithm_two()),
    ] {
        group.bench_function(label, |b| {
            let mut ccfg = CampaignConfig::quick(40, 11);
            ccfg.loop_cfg = bench_loop_config_checkpointed(60, 4);
            ccfg.threads = 1;
            b.iter(|| run_scifi_campaign(black_box(&workload), &ccfg));
        });
    }

    // The headline campaign with a live Telemetry observer attached — the
    // before/after pair EXPERIMENTS.md reports the observer overhead from
    // (expected within the noise floor, well under 2 %).
    group.bench_function("campaign_algorithm1_telemetry", |b| {
        let workload = Workload::algorithm_one();
        let mut ccfg = CampaignConfig::quick(40, 11);
        ccfg.loop_cfg = bench_loop_config(60);
        ccfg.threads = 1;
        ccfg.prune = false;
        b.iter(|| {
            let telemetry = Telemetry::new(40);
            run_scifi_campaign_observed(black_box(&workload), &ccfg, &telemetry)
        });
    });

    // Checkpointed counterparts of the two headline campaign series — the
    // before/after pair EXPERIMENTS.md reports the speedup ratio from.
    for (label, workload) in [
        (
            "checkpointed_campaign_algorithm1",
            Workload::algorithm_one(),
        ),
        (
            "checkpointed_campaign_algorithm2",
            Workload::algorithm_two(),
        ),
    ] {
        group.bench_function(label, |b| {
            let mut ccfg = CampaignConfig::quick(40, 11);
            ccfg.loop_cfg = bench_loop_config_checkpointed(60, 4);
            ccfg.threads = 1;
            ccfg.prune = false;
            b.iter(|| run_scifi_campaign(black_box(&workload), &ccfg));
        });
    }

    group.bench_function("swifi_campaign_native", |b| {
        let cfg = SwifiConfig {
            faults: 50,
            seed: 3,
            iterations: 100,
            model: bera_goofi::FaultModel::SingleBit,
        };
        b.iter(|| run_swifi(PiController::paper, black_box(&cfg)));
    });

    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
