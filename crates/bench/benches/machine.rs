//! Thor-like CPU simulator throughput: instructions per second executing
//! the two workloads, assembler speed, and scan-chain operations — the
//! quantities that determine how long a 9290-fault campaign takes.

use bera_goofi::workload::Workload;
use bera_plant::{Engine, Profiles};
use bera_tcpu::asm::assemble;
use bera_tcpu::machine::{Machine, RunExit, PORT_R, PORT_Y};
use bera_tcpu::scan;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn run_iterations(workload: &Workload, iterations: usize) -> u64 {
    let mut m = Machine::new();
    m.load_program(workload.program());
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    for k in 0..iterations {
        let t = k as f64 * 0.0154;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield);
        engine.advance(f64::from(m.port_out_f32(2)), profiles.load(t), 0.0154);
    }
    m.instr_count()
}

fn bench_machine(c: &mut Criterion) {
    // How many instructions one controller iteration costs.
    let per_iter = {
        let w = Workload::algorithm_one();
        run_iterations(&w, 10) / 10
    };

    let mut group = c.benchmark_group("machine");
    group.throughput(Throughput::Elements(per_iter * 50));

    for w in [Workload::algorithm_one(), Workload::algorithm_two()] {
        group.bench_function(format!("execute_{}", w.name().replace(' ', "_")), |b| {
            b.iter(|| run_iterations(black_box(&w), 50));
        });
    }

    group.bench_function("assemble_algorithm2", |b| {
        b.iter(|| assemble(black_box(bera_goofi::workload::ALGORITHM_2_SOURCE)).unwrap());
    });

    group.bench_function("rtw_compile_algorithm2", |b| {
        let model = bera_rtw::algorithm_two_model();
        b.iter(|| bera_rtw::compile(black_box(&model)).unwrap());
    });

    group.bench_function("load_program", |b| {
        let w = Workload::algorithm_one();
        let mut m = Machine::new();
        b.iter(|| m.load_program(black_box(w.program())));
    });

    group.bench_function("scan_snapshot", |b| {
        let m = Machine::new();
        b.iter(|| black_box(m.scan_snapshot()));
    });

    group.bench_function("scan_flip_all_locations", |b| {
        let mut m = Machine::new();
        let catalog = scan::catalog();
        b.iter(|| {
            for &loc in catalog.iter().step_by(7) {
                m.scan_flip(black_box(loc));
            }
        });
    });

    // The per-boundary divergence check the convergence pruner runs: the
    // full-state walk against the dirty-set-restricted compare the
    // lockstep engine's split-off path made the common case.
    let (full, dirty) = {
        let w = Workload::algorithm_one();
        let mut m = Machine::new();
        m.load_program(w.program());
        let twin = m.clone();
        let units: Vec<_> = scan::catalog()
            .iter()
            .filter_map(|loc| loc.trace_unit())
            .step_by(97)
            .take(4)
            .collect();
        (m, (twin, units))
    };
    let (twin, units) = dirty;
    group.bench_function("state_equals_full_walk", |b| {
        b.iter(|| black_box(full.state_equals(&twin)));
    });
    group.bench_function("state_equals_on_dirty_set", |b| {
        b.iter(|| black_box(full.state_equals_on(&twin, &units)));
    });

    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
