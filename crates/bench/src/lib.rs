//! Shared helpers for the benchmark suite (see `benches/`).
//!
//! The benches quantify the paper's cost argument: executable assertions
//! and best effort recovery are a *software* mitigation whose per-iteration
//! overhead must be small compared to the control period (15.4 ms), unlike
//! hardware duplication.

use bera_goofi::experiment::LoopConfig;
use bera_plant::{Engine, Profiles};

/// A standard short loop configuration for campaign benches, with
/// checkpointing disabled — the from-reset baseline the paper-era campaign
/// engine used.
#[must_use]
pub fn bench_loop_config(iterations: usize) -> LoopConfig {
    LoopConfig {
        iterations,
        sample_interval: 0.0154,
        profiles: Profiles::paper(),
        engine: Engine::paper(),
        parity_cache: false,
        checkpoint_stride: 0,
        fast_replay: true,
    }
}

/// [`bench_loop_config`] with golden-run checkpointing enabled: experiments
/// fast-forward from the nearest checkpoint and prune converged tails.
#[must_use]
pub fn bench_loop_config_checkpointed(iterations: usize, stride: usize) -> LoopConfig {
    LoopConfig {
        checkpoint_stride: stride,
        ..bench_loop_config(iterations)
    }
}
