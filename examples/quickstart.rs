//! Quickstart: executable assertions and best effort recovery in a few
//! lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! A PI engine-speed controller is corrupted by a simulated bit-flip in
//! its integrator state. Algorithm I locks the throttle at full speed;
//! Algorithm II recovers from the one-iteration-old backup.

use bera::core::bitflip::flip_bit_f64;
use bera::core::{Controller, PiController, ProtectedPiController};
use bera::plant::{ClosedLoop, Engine, Profiles};

fn main() {
    let profiles = Profiles::paper();

    // Run both controllers fault-free for 5 seconds (325 iterations).
    let mut plain = ClosedLoop::new(Engine::paper(), PiController::paper());
    let mut protected = ClosedLoop::new(Engine::paper(), ProtectedPiController::paper());
    plain.run(&profiles, 325);
    protected.run(&profiles, 325);

    // A heavy ion strikes a high exponent bit of the integrator state in
    // both controllers: x becomes astronomically large.
    let x = plain.controller().x();
    let corrupted = flip_bit_f64(x, 61);
    println!("state x: {x:.2}° -> corrupted to {corrupted:.3e}");
    plain.controller_mut().set_x(corrupted);
    protected.controller_mut().set_state(0, corrupted);

    // Continue for the remaining 5 seconds and compare.
    let trace_plain = plain.run(&profiles, 325);
    let trace_protected = protected.run(&profiles, 325);

    let locked = trace_plain.outputs().iter().filter(|&&u| u >= 70.0).count();
    println!("Algorithm I : throttle locked at 70° for {locked}/325 iterations — the engine races");
    let max_protected = trace_protected
        .outputs()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    let stats = protected.controller().stats();
    println!(
        "Algorithm II: output never exceeded {max_protected:.1}°, \
         {} best-effort recovery performed",
        stats.total()
    );
    let last = trace_protected.samples().last().unwrap();
    println!(
        "Algorithm II final speed: {:.0} rpm (reference {:.0} rpm)",
        last.y, last.r
    );
}
