//! The paper's workload in closed loop: the Figure 3–5 scenario.
//!
//! ```bash
//! cargo run --release --example engine_closed_loop
//! ```
//!
//! Runs the PI controller against the engine for 10 seconds (650 samples
//! of 15.4 ms), with the reference stepping from 2000 to 3000 rpm at
//! t = 5 s and load hills in 3 s < t < 4 s and 7 s < t < 8 s, then draws
//! crude ASCII plots of the speed and the throttle command.

use bera::core::PiController;
use bera::plant::{ClosedLoop, Engine, Profiles, Trace};

fn ascii_plot(title: &str, values: &[f64], lo: f64, hi: f64, rows: usize) {
    println!("\n{title}  [{lo:.0} .. {hi:.0}]");
    let cols = 86;
    let stride = values.len().div_ceil(cols);
    let sampled: Vec<f64> = values.iter().step_by(stride).copied().collect();
    for row in (0..rows).rev() {
        let threshold = lo + (hi - lo) * (row as f64 + 0.5) / rows as f64;
        let line: String = sampled
            .iter()
            .map(|&v| if v >= threshold { '█' } else { ' ' })
            .collect();
        println!("{threshold:8.1} |{line}");
    }
    println!("{:>9}+{}", "", "-".repeat(sampled.len()));
    println!("{:>10}0s{:>40}5s{:>40}10s", "", "", "");
}

fn main() {
    let profiles = Profiles::paper();
    let mut cl = ClosedLoop::new(Engine::paper(), PiController::paper());
    let trace: Trace = cl.run(&profiles, 650);

    ascii_plot(
        "engine speed y (rpm) — Figure 3",
        &trace.speeds(),
        1800.0,
        3400.0,
        12,
    );
    ascii_plot(
        "throttle u_lim (deg) — Figure 5",
        &trace.outputs(),
        0.0,
        70.0,
        10,
    );
    let loads: Vec<f64> = trace.samples().iter().map(|s| s.load).collect();
    ascii_plot("load torque (N·m) — Figure 4", &loads, 0.0, 30.0, 6);

    let last = trace.samples().last().unwrap();
    println!(
        "\nfinal: y = {:.0} rpm against r = {:.0} rpm, throttle {:.1}°",
        last.y, last.r, last.u
    );
    println!("CSV of the whole run:\n(head)");
    for line in trace.to_csv().lines().take(4) {
        println!("  {line}");
    }
}
