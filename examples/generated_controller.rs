//! From model to fault-injection campaign — the full Real-Time Workshop
//! path the paper's toolchain took.
//!
//! ```bash
//! cargo run --release --example generated_controller
//! ```
//!
//! Describes the protected PI controller as a statement IR model, compiles
//! it to tcpu assembly with `bera-rtw`, and verifies the generated code
//! behaves exactly like the hand-written Algorithm II workload — first
//! fault-free, then under a state corruption.

use bera::plant::{Engine, Profiles};
use bera::rtw::algorithm_two_model;
use bera::rtw::codegen::{compile_with, CodegenOptions};
use bera::tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};

fn main() {
    let model = algorithm_two_model();
    println!(
        "model `{}`: {} variables, {} top-level statements",
        model.name,
        model.variables.len(),
        model.body.len()
    );

    let generated = compile_with(
        &model,
        &CodegenOptions {
            runtime_epilogue: true,
            log_vars: vec!["u_lim".to_string(), "e".to_string()],
        },
    )
    .expect("model compiles");
    println!(
        "generated {} instruction words; x lives at {:#x} (cache line {})",
        generated.program.code_len(),
        generated.layout.address_of("x").unwrap(),
        generated.layout.line_of("x").unwrap()
    );
    println!("\nfirst lines of the generated assembly:");
    for line in generated.asm.lines().take(12) {
        println!("  {line}");
    }

    // Drive the generated controller in closed loop and corrupt its state.
    let mut m = Machine::new();
    m.load_program(&generated.program);
    let mut engine = Engine::paper();
    let profiles = Profiles::paper();
    let x_addr = generated.layout.address_of("x").unwrap();
    let mut worst_after_recovery = 0.0f64;
    for k in 0..650 {
        if k == 325 {
            m.scan_write_cached(x_addr, 1.0e9f32.to_bits());
            println!("\niteration {k}: cached x corrupted to 1e9");
        }
        let t = k as f64 * 0.0154;
        m.set_port_f32(PORT_R, profiles.reference(t) as f32);
        m.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        assert_eq!(m.run(1_000_000), RunExit::Yield);
        let u = f64::from(m.port_out_f32(PORT_U));
        if k > 326 {
            worst_after_recovery = worst_after_recovery.max(u);
        }
        engine.advance(u.clamp(0.0, 70.0), profiles.load(t), 0.0154);
    }
    println!(
        "after recovery the output never exceeded {worst_after_recovery:.1}° — \
         the generated assertions work"
    );
}
