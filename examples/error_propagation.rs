//! Watching a single bit-flip propagate through the processor — GOOFI's
//! *detail mode*.
//!
//! ```bash
//! cargo run --release --example error_propagation
//! ```
//!
//! Injects one fault into the cached controller state, runs the golden and
//! faulty machines in lockstep, and prints (a) the propagation report and
//! (b) the instruction-level trace around the moment the corruption is
//! consumed.

use bera::goofi::experiment::{golden_run, FaultSpec, LoopConfig};
use bera::goofi::propagation::{analyze, detail_trace};
use bera::goofi::workload::Workload;
use bera::tcpu::scan::{catalog, BitLocation};
use bera::tcpu::trace::render;

fn main() {
    let workload = Workload::algorithm_one();
    let cfg = LoopConfig::short(60);
    let golden = golden_run(&workload, &cfg);

    // Flip a high exponent bit of the cached state variable x, mid-run.
    let location_index = catalog()
        .iter()
        .position(|l| matches!(l, BitLocation::CacheData { line: 0, bit: 28 }))
        .expect("location exists");
    let fault = FaultSpec {
        location_index,
        inject_at: golden.total_instructions / 2 + 40,
    };

    let report = analyze(&workload, &cfg, fault, 3_000);
    println!(
        "fault: {:?} @ instruction {}",
        report.location, fault.inject_at
    );
    println!(
        "bits differing right after injection: {}",
        report.initial_diff
    );
    match report.spread_at {
        Some(at) => println!(
            "corruption spread into other state elements at instruction {at} \
             (+{} after injection)",
            at - fault.inject_at
        ),
        None => println!("corruption never spread"),
    }
    match report.output_diverged_at {
        Some(at) => println!(
            "actuator output diverged at instruction {at} \
             (+{} after injection)",
            at - fault.inject_at
        ),
        None => println!("output never diverged in the window"),
    }
    match report.detected {
        Some(trap) => println!(
            "detected by {} at instruction {}",
            trap.mechanism, trap.at_instruction
        ),
        None => println!("no detection: this is an undetected wrong result in the making"),
    }
    println!(
        "bits still differing at the end of the window: {}",
        report.final_diff
    );

    // The first instructions after injection, with register writes.
    let (entries, _) = detail_trace(&workload, &cfg, fault, 18);
    println!("\ndetail-mode trace from the injection point:");
    print!("{}", render(&entries));
}
