//! Protecting a MIMO controller — the paper's future-work direction.
//!
//! ```bash
//! cargo run --release --example protected_mimo
//! ```
//!
//! Wraps a two-spool jet-engine-style state-space controller with the
//! Section 4.3 recipe (one executable assertion per state variable and per
//! output, best effort recovery from one-sample-old backups), corrupts
//! each state in turn, and shows the recovery log.

use bera::core::controller::Limits;
use bera::core::{MimoController, Protected, StateController, StateSpace};

fn main() {
    let sys = StateSpace::jet_engine_demo();
    let ctrl = MimoController::new(sys, vec![Limits::new(0.0, 1.0); 2]);
    // States are integrators of bounded errors: assert a generous
    // physical envelope.
    let mut protected = Protected::uniform(ctrl, Limits::new(-10.0, 10.0));

    // A static two-output plant to close the loop against.
    let mut y = [0.0f64; 2];
    let r = [0.4f64, 0.25];
    let mut u = [0.0f64; 2];

    println!("two-loop jet-engine controller, references {r:?}");
    for k in 0..4000 {
        let e = [r[0] - y[0], r[1] - y[1]];
        protected.compute(&e, &mut u);
        y[0] = 0.5 * u[0];
        y[1] = 0.5 * u[1];

        // Upset a different state variable every thousand samples.
        if k % 1000 == 500 {
            let idx = (k / 1000) % protected.num_states();
            let mut states = protected.states();
            let before = states[idx];
            states[idx] = -4.0e9; // far outside the asserted envelope
            protected.set_states(&states);
            println!(
                "k={k}: corrupted state {idx} ({before:.4} -> -4e9), \
                 next iteration recovers from backup"
            );
        }
    }

    let report = protected.report();
    println!(
        "\nafter {} iterations: {} state recoveries, {} output recoveries",
        report.iterations, report.state_recoveries, report.output_recoveries
    );
    println!(
        "loops settled at y = [{:.4}, {:.4}] (references [{}, {}])",
        y[0], y[1], r[0], r[1]
    );
    assert!((y[0] - r[0]).abs() < 0.01 && (y[1] - r[1]).abs() < 0.01);
    println!("both loops on target despite the injected upsets");
}
