//! A small SCIFI fault-injection campaign, end to end.
//!
//! ```bash
//! cargo run --release --example fault_injection_campaign
//! ```
//!
//! Follows GOOFI's four phases on the Thor-like CPU simulator: configure
//! (Algorithm I, 600 faults), set up (uniform sampling over scan-chain
//! bits × dynamic instructions), inject (one experiment per fault), and
//! analyse (the paper's Table 2 layout), then tells the story of the worst
//! failure it found.

use bera::goofi::campaign::{run_scifi_campaign, CampaignConfig};
use bera::goofi::classify::Outcome;
use bera::goofi::table::tabulate;
use bera::goofi::workload::Workload;

fn main() {
    // Phase 1 — configuration.
    let workload = Workload::algorithm_one();
    let cfg = CampaignConfig::paper(600, 7);
    println!(
        "campaign: {} faults into `{}` over {} control iterations",
        cfg.faults,
        workload.name(),
        cfg.loop_cfg.iterations
    );

    // Phases 2 + 3 — set-up and injection (golden run inside).
    let result = run_scifi_campaign(&workload, &cfg);

    // Phase 4 — analysis.
    let table = tabulate(&result);
    println!("\n{}", table.render());

    // The worst undetected wrong result.
    let worst = result
        .records
        .iter()
        .filter(|r| r.outcome.is_value_failure())
        .max_by(|a, b| a.max_deviation.total_cmp(&b.max_deviation));
    match worst {
        Some(rec) => {
            println!(
                "worst value failure: {} after flipping {:?} at dynamic instruction {}\n\
                 max output deviation {:.2}°, first visible at iteration {:?}",
                rec.outcome,
                rec.location,
                rec.fault.inject_at,
                rec.max_deviation,
                rec.first_strong_iteration
            );
        }
        None => println!("no value failures in this campaign"),
    }

    // How often each mechanism saved the day.
    let detected = result
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Detected(_)))
        .count();
    println!(
        "\n{} of {} faults were caught by the hardware error detection mechanisms",
        detected, cfg.faults
    );
}
