//! Using the Thor-like CPU simulator directly: write assembly, run it,
//! flip a bit through the scan chain, watch an error detection mechanism
//! catch it.
//!
//! ```bash
//! cargo run --release --example custom_workload
//! ```

use bera::tcpu::asm::assemble;
use bera::tcpu::machine::{Machine, RunExit};
use bera::tcpu::scan::{catalog, BitLocation, CpuPart};

const PROGRAM: &str = r#"
    ; Compute compound interest in fixed point: 1000 * 1.05^n
    .data 0x10000
    balance: .float 1000.0
    .text
    start:
        nop
    loop:
        li   r1, 0x10000
        ld   r2, [r1+0]
        lif  r3, 1.05
        fmul r2, r2, r3          ; balance *= 1.05
        st   r2, [r1+0]
        out  r2, 2
        yield
        jmp  loop
"#;

fn main() {
    let program = assemble(PROGRAM).expect("program assembles");
    println!(
        "assembled {} instruction words, entry at {:#x}",
        program.code_len(),
        program.entry
    );

    // Fault-free run: ten compounding periods.
    let mut m = Machine::new();
    m.load_program(&program);
    for _ in 0..10 {
        assert_eq!(m.run(1_000), RunExit::Yield);
    }
    println!("after 10 periods: balance = {:.2}", m.port_out_f32(2));

    // The scan chain exposes every state element of the CPU.
    let cache_bits = catalog()
        .iter()
        .filter(|l| l.part() == CpuPart::Cache)
        .count();
    let reg_bits = catalog().len() - cache_bits;
    println!("scan chain: {cache_bits} cache bits + {reg_bits} register bits");

    // Flip the sign bit of the cached balance: the unprotected cache lets
    // the corruption through, and the next multiplication result is a
    // negative balance delivered to the output port.
    m.scan_flip(BitLocation::CacheData { line: 0, bit: 31 });
    assert_eq!(m.run(1_000), RunExit::Yield);
    println!(
        "after a sign-bit flip in the cache: balance = {:.2}",
        m.port_out_f32(2)
    );

    // Now corrupt the prefetched instruction word in the pipeline latch:
    // the opcode becomes illegal and INSTRUCTION ERROR fires immediately.
    let mut m2 = Machine::new();
    m2.load_program(&program);
    m2.run(1_000);
    m2.scan_flip(BitLocation::FetchWord { bit: 31 });
    match m2.run(1_000) {
        RunExit::Trap(trap) => println!(
            "pipeline-latch bit flip detected by {} at instruction {}",
            trap.mechanism, trap.at_instruction
        ),
        other => println!("unexpected: {other:?}"),
    }
}
