//! Shared plumbing for the experiment binaries that regenerate the paper's
//! tables and figures (`table2`, `table3`, `table4`, `figures`,
//! `ablations`, `swifi_report`).

use bera_goofi::campaign::{run_scifi_campaign, CampaignConfig, CampaignResult};
use bera_goofi::workload::Workload;
use std::fs;
use std::path::{Path, PathBuf};

/// Faults injected into Algorithm I in the paper's Table 2.
pub const ALG1_FAULTS: usize = 9290;
/// Faults injected into Algorithm II in the paper's Table 3.
pub const ALG2_FAULTS: usize = 2372;
/// The fixed seed all reported campaigns use, so every binary regenerates
/// identical numbers.
pub const CAMPAIGN_SEED: u64 = 20010701; // DSN 2001, Göteborg, July 2001

/// Directory where binaries drop their tables, CSV series and JSON
/// databases.
#[must_use]
pub fn artifacts_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts");
    if let Err(e) = fs::create_dir_all(&dir) {
        panic!("cannot create artifacts directory {}: {e}", dir.display());
    }
    dir
}

/// Writes an artifact file and reports where it went.
///
/// Fails loudly — naming the path and the OS error — rather than letting
/// a benchmark or table run complete with its output silently missing.
pub fn write_artifact(name: &str, contents: &str) {
    let path = artifacts_dir().join(name);
    if let Err(e) = fs::write(&path, contents) {
        panic!("cannot write artifact {}: {e}", path.display());
    }
    println!("wrote {}", path.display());
}

/// Reads the fault-count override from the environment
/// (`BERA_FAULTS=<n>` scales campaigns down for smoke runs).
#[must_use]
pub fn fault_override(default: usize) -> usize {
    std::env::var("BERA_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs the canonical campaign for a workload with the paper's fault count
/// (scaled by `BERA_FAULTS` if set).
#[must_use]
pub fn canonical_campaign(workload: &Workload, faults: usize) -> CampaignResult {
    let cfg = CampaignConfig::paper(fault_override(faults), CAMPAIGN_SEED);
    run_scifi_campaign(workload, &cfg)
}

/// Renders two aligned numeric series as CSV with a header.
#[must_use]
pub fn csv_two(header: &str, t: &[f64], values: &[f64]) -> String {
    assert_eq!(t.len(), values.len(), "series length mismatch");
    let mut out = format!("{header}\n");
    for (a, b) in t.iter().zip(values.iter()) {
        out.push_str(&format!("{a:.4},{b:.5}\n"));
    }
    out
}

/// Renders a golden-vs-faulty output comparison as CSV.
#[must_use]
pub fn csv_compare(golden: &[u32], faulty: &[u32], sample_interval: f64) -> String {
    assert_eq!(golden.len(), faulty.len(), "series length mismatch");
    let mut out = String::from("t,u_fault_free,u_faulty\n");
    for (k, (g, f)) in golden.iter().zip(faulty.iter()).enumerate() {
        out.push_str(&format!(
            "{:.4},{:.5},{:.5}\n",
            k as f64 * sample_interval,
            f32::from_bits(*g),
            f32::from_bits(*f)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_two_has_header_and_rows() {
        let s = csv_two("t,v", &[0.0, 1.0], &[2.0, 3.0]);
        assert!(s.starts_with("t,v\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn csv_compare_shape() {
        let g = vec![1.0f32.to_bits(); 4];
        let f = vec![2.0f32.to_bits(); 4];
        let s = csv_compare(&g, &f, 0.0154);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("u_faulty"));
    }

    #[test]
    fn artifacts_dir_exists() {
        assert!(artifacts_dir().is_dir());
    }
}
