//! Offline report generator — rebuilds the paper tables from a JSONL
//! result store, without re-running any campaign.
//!
//! ```text
//! report FILE                 render the paper table (Tables 2/3 layout)
//! report FILE1 FILE2          render Table 4 (Algorithm I vs II comparison)
//! report --by-model FILE...   render a per-fault-model breakdown, one
//!                             column per model found in the store headers
//! report --csv FILE...        export as CSV instead of rendered text
//!                             (single-campaign, two-file comparison,
//!                             and --by-model layouts all supported)
//! report --partial FILE       tabulate an incomplete store (missing faults
//!                             are simply absent from the counts)
//! report --artifact NAME ...  additionally write the rendering under
//!                             artifacts/NAME
//! ```
//!
//! The store's per-line checksums and header are validated on load, so a
//! truncated or corrupted database is reported rather than silently
//! mis-tabulated.
//!
//! Any FILE may also be a campaign-farm directory (one holding a
//! `manifest.json`, see `campaign --farm-init`): per-shard progress and
//! telemetry are printed to stderr, and the tables come from the merged
//! store when the farm is complete, or from the segments assembled in
//! place (use `--partial` mid-flight). Segment/manifest header mismatches
//! and cross-shard duplicates are refused with a precise error.

use bera::goofi::campaign::CampaignResult;
use bera::goofi::farm;
use bera::goofi::observer::TelemetrySnapshot;
use bera::goofi::store::load_store;
use bera::goofi::table::{tabulate, ComparisonTable, ModelBreakdown};
use bera::repro;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    csv: bool,
    partial: bool,
    by_model: bool,
    artifact: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        csv: false,
        partial: false,
        by_model: false,
        artifact: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--csv" => args.csv = true,
            "--partial" => args.partial = true,
            "--by-model" => args.by_model = true,
            "--artifact" => {
                args.artifact = Some(
                    it.next()
                        .ok_or_else(|| "--artifact expects a name".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            path => args.files.push(path.to_string()),
        }
    }
    if args.by_model {
        if args.files.is_empty() {
            return Err("--by-model expects at least one store file".to_string());
        }
        return Ok(args);
    }
    match args.files.len() {
        1 | 2 => {}
        0 => return Err("expected a result store file".to_string()),
        n => return Err(format!("expected 1 or 2 store files, got {n}")),
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: report [--csv] [--partial] [--by-model] [--artifact NAME] FILE...\n\
         \n\
         With one store file, renders that campaign's paper table; with two,\n\
         renders the Table 4 comparison (first store = Algorithm I column).\n\
         --by-model groups any number of stores by the fault model in their\n\
         headers and renders one breakdown column per model.\n\
         --csv exports any of the three layouts as CSV.\n\
         --partial tabulates an incomplete store instead of refusing it.\n\
         \n\
         A FILE may also be a campaign-farm directory (campaign --farm-init):\n\
         per-shard progress/telemetry print to stderr and the tables come\n\
         from the merged store, or from the assembled segments mid-flight\n\
         (with --partial)."
    );
}

/// Loads every store, groups results by the fault model recorded in their
/// headers (stores sharing a model are merged column-wise in file order),
/// and renders the per-model breakdown.
fn render_by_model(args: &Args) -> Result<String, String> {
    let mut groups: Vec<(String, CampaignResult)> = Vec::new();
    for path in &args.files {
        let loaded = load_store(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        let label = loaded.header.fault_model.to_string();
        let result = if args.partial {
            loaded.into_partial_result()
        } else {
            loaded.into_result().map_err(|e| format!("{path}: {e}"))?
        };
        match groups.iter_mut().find(|(l, _)| *l == label) {
            Some((_, merged)) => merged.records.extend(result.records),
            None => groups.push((label, result)),
        }
    }
    let columns: Vec<(String, &CampaignResult)> = groups
        .iter()
        .map(|(label, result)| (label.clone(), result))
        .collect();
    let breakdown = ModelBreakdown::new(&columns);
    Ok(if args.csv {
        breakdown.to_csv()
    } else {
        breakdown.render()
    })
}

fn load(path: &str, partial: bool) -> Result<CampaignResult, String> {
    if farm::is_farm_dir(Path::new(path)) {
        return load_farm(Path::new(path), partial);
    }
    let loaded = load_store(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    if loaded.torn_tail {
        eprintln!("note: {path} has a torn final line; that record is ignored");
    }
    if partial {
        let done = loaded.done();
        let total = loaded.records.len();
        if done < total {
            eprintln!("note: {path} is partial ({done}/{total} records)");
        }
        Ok(loaded.into_partial_result())
    } else {
        loaded.into_result().map_err(|e| format!("{path}: {e}"))
    }
}

/// Loads a campaign-farm directory (DESIGN.md § 8i): per-shard progress
/// and telemetry go to stderr, and the records come from the canonical
/// merged store when the farm is complete and merged, otherwise from the
/// segments assembled in place (cross-validated against the manifest —
/// a header mismatch, foreign index or duplicate index is refused, never
/// papered over).
fn load_farm(root: &Path, partial: bool) -> Result<CampaignResult, String> {
    let label = root.display();
    let assembly = farm::assemble_farm(root).map_err(|e| format!("{label}: {e}"))?;
    for s in &assembly.shards {
        let lease = match &s.lease {
            farm::LeaseState::Unclaimed => "unclaimed".to_string(),
            farm::LeaseState::Held { worker, age } => {
                format!(
                    "held by {worker} ({:.1} s since heartbeat)",
                    age.as_secs_f64()
                )
            }
            farm::LeaseState::Expired { worker, age } => {
                format!(
                    "EXPIRED lease of {worker} ({:.1} s stale)",
                    age.as_secs_f64()
                )
            }
        };
        eprintln!(
            "{label}: shard {} [{}..{}): {}/{} records, {}{}{}",
            s.spec.index,
            s.spec.start,
            s.spec.end,
            s.records,
            s.spec.len(),
            if s.done { "done, " } else { "" },
            lease,
            if s.torn { ", torn tail" } else { "" },
        );
        if let Some(t) = &s.telemetry {
            eprintln!("{label}: shard {} telemetry: {t}", s.spec.index);
        }
    }
    let merged = farm::merged_path(root);
    if merged.exists() && assembly.is_complete() {
        let loaded = load_store(&merged).map_err(|e| format!("{}: {e}", merged.display()))?;
        loaded
            .header
            .validate_against(&assembly.manifest.header)
            .map_err(|e| format!("{}: {e}", merged.display()))?;
        eprintln!("{label}: farm complete; reading the canonical merged store");
        return loaded
            .into_result()
            .map_err(|e| format!("{}: {e}", merged.display()));
    }
    let done = assembly.done();
    let total = assembly.manifest.faults;
    if assembly.is_complete() {
        eprintln!(
            "{label}: all shards complete but unmerged; tabulating assembled \
             segments (fold them with `campaign --farm-merge {label}`)"
        );
        return assembly
            .into_loaded()
            .into_result()
            .map_err(|e| format!("{label}: {e}"));
    }
    eprintln!("{label}: farm mid-flight ({done}/{total} records)");
    if partial {
        Ok(assembly.into_loaded().into_partial_result())
    } else {
        assembly
            .into_loaded()
            .into_result()
            .map_err(|e| format!("{label}: {e}"))
    }
}

/// Prints the execution-strategy counters from a campaign's telemetry
/// sidecar (`<store>.telemetry.json`, written by `campaign --out`), when
/// one exists. The records alone can't show *how* the campaign ran —
/// prune rate, convergence splices, lockstep batch occupancy and
/// split-off rate live only in the snapshot.
fn report_telemetry_sidecar(store_path: &str) {
    let side = format!("{store_path}.telemetry.json");
    let Ok(json) = std::fs::read_to_string(&side) else {
        return;
    };
    match serde_json::from_str::<TelemetrySnapshot>(&json) {
        Ok(snap) => {
            eprintln!("{store_path}: run as {snap}");
            if snap.batch_members > 0 {
                eprintln!(
                    "{store_path}: lockstep batching: {} groups, {:.0}% occupancy, \
                     {:.0}% split off, mean lockstep prefix {:.0} instructions",
                    snap.batch_groups,
                    100.0 * snap.batch_occupancy(),
                    100.0 * snap.split_off_rate(),
                    snap.mean_lockstep_prefix(),
                );
            }
            if snap.vis_analytic() > 0 || snap.vis_replicated > 0 {
                eprintln!(
                    "{store_path}: EDM-visibility analysis: {} latent, {} overwritten, \
                     {} signature write-first, {} value-resolved, {} replicated \
                     (planned in {} µs)",
                    snap.vis_latent,
                    snap.vis_overwritten,
                    snap.sig_overwritten,
                    snap.value_resolved,
                    snap.vis_replicated,
                    snap.plan_micros,
                );
            }
            if snap.sim_instructions > 0 {
                eprintln!(
                    "{store_path}: fast replay: {:.0}% of {} simulated instructions \
                     via predecoded blocks; {} arena restores, mean {:.0} dirty words \
                     ({} full clones)",
                    100.0 * snap.block_hit_rate(),
                    snap.sim_instructions,
                    snap.arena_restores,
                    snap.mean_dirty_words(),
                    snap.arena_full_clones,
                );
            }
            if snap.batch_vis_admitted > 0 || snap.batch_untraceable > 0 {
                eprintln!(
                    "{store_path}: lockstep admission: {} replicas admitted via \
                     visibility deltas, {} rejected as untraceable",
                    snap.batch_vis_admitted, snap.batch_untraceable,
                );
            }
        }
        Err(e) => eprintln!("note: {side} is unreadable ({e}); ignoring"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let rendered = if args.by_model {
        match render_by_model(&args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.files.len() == 2 {
        let first = match load(&args.files[0], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let second = match load(&args.files[1], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = ComparisonTable::new(&first, &second);
        if args.csv {
            cmp.to_csv()
        } else {
            cmp.render()
        }
    } else {
        let result = match load(&args.files[0], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let table = tabulate(&result);
        if args.csv {
            table.to_csv()
        } else {
            table.render()
        }
    };

    println!("{rendered}");
    for path in &args.files {
        if farm::is_farm_dir(Path::new(path)) {
            // A farm's campaign-level sidecar sits next to the merged
            // store (the per-shard ones were already printed above).
            report_telemetry_sidecar(&farm::merged_path(Path::new(path)).display().to_string());
        } else {
            report_telemetry_sidecar(path);
        }
    }
    if let Some(name) = &args.artifact {
        repro::write_artifact(name, &rendered);
    }
    ExitCode::SUCCESS
}
