//! Offline report generator — rebuilds the paper tables from a JSONL
//! result store, without re-running any campaign.
//!
//! ```text
//! report FILE                 render the paper table (Tables 2/3 layout)
//! report FILE1 FILE2          render Table 4 (Algorithm I vs II comparison)
//! report --by-model FILE...   render a per-fault-model breakdown, one
//!                             column per model found in the store headers
//! report --csv FILE...        export as CSV instead of rendered text
//!                             (single-campaign, two-file comparison,
//!                             and --by-model layouts all supported)
//! report --partial FILE       tabulate an incomplete store (missing faults
//!                             are simply absent from the counts)
//! report --artifact NAME ...  additionally write the rendering under
//!                             artifacts/NAME
//! ```
//!
//! The store's per-line checksums and header are validated on load, so a
//! truncated or corrupted database is reported rather than silently
//! mis-tabulated.

use bera::goofi::campaign::CampaignResult;
use bera::goofi::observer::TelemetrySnapshot;
use bera::goofi::store::load_store;
use bera::goofi::table::{tabulate, ComparisonTable, ModelBreakdown};
use bera::repro;
use std::path::Path;
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    csv: bool,
    partial: bool,
    by_model: bool,
    artifact: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        csv: false,
        partial: false,
        by_model: false,
        artifact: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--csv" => args.csv = true,
            "--partial" => args.partial = true,
            "--by-model" => args.by_model = true,
            "--artifact" => {
                args.artifact = Some(
                    it.next()
                        .ok_or_else(|| "--artifact expects a name".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            path => args.files.push(path.to_string()),
        }
    }
    if args.by_model {
        if args.files.is_empty() {
            return Err("--by-model expects at least one store file".to_string());
        }
        return Ok(args);
    }
    match args.files.len() {
        1 | 2 => {}
        0 => return Err("expected a result store file".to_string()),
        n => return Err(format!("expected 1 or 2 store files, got {n}")),
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: report [--csv] [--partial] [--by-model] [--artifact NAME] FILE...\n\
         \n\
         With one store file, renders that campaign's paper table; with two,\n\
         renders the Table 4 comparison (first store = Algorithm I column).\n\
         --by-model groups any number of stores by the fault model in their\n\
         headers and renders one breakdown column per model.\n\
         --csv exports any of the three layouts as CSV.\n\
         --partial tabulates an incomplete store instead of refusing it."
    );
}

/// Loads every store, groups results by the fault model recorded in their
/// headers (stores sharing a model are merged column-wise in file order),
/// and renders the per-model breakdown.
fn render_by_model(args: &Args) -> Result<String, String> {
    let mut groups: Vec<(String, CampaignResult)> = Vec::new();
    for path in &args.files {
        let loaded = load_store(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        let label = loaded.header.fault_model.to_string();
        let result = if args.partial {
            loaded.into_partial_result()
        } else {
            loaded.into_result().map_err(|e| format!("{path}: {e}"))?
        };
        match groups.iter_mut().find(|(l, _)| *l == label) {
            Some((_, merged)) => merged.records.extend(result.records),
            None => groups.push((label, result)),
        }
    }
    let columns: Vec<(String, &CampaignResult)> = groups
        .iter()
        .map(|(label, result)| (label.clone(), result))
        .collect();
    let breakdown = ModelBreakdown::new(&columns);
    Ok(if args.csv {
        breakdown.to_csv()
    } else {
        breakdown.render()
    })
}

fn load(path: &str, partial: bool) -> Result<CampaignResult, String> {
    let loaded = load_store(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    if loaded.torn_tail {
        eprintln!("note: {path} has a torn final line; that record is ignored");
    }
    if partial {
        let done = loaded.done();
        let total = loaded.records.len();
        if done < total {
            eprintln!("note: {path} is partial ({done}/{total} records)");
        }
        Ok(loaded.into_partial_result())
    } else {
        loaded.into_result().map_err(|e| format!("{path}: {e}"))
    }
}

/// Prints the execution-strategy counters from a campaign's telemetry
/// sidecar (`<store>.telemetry.json`, written by `campaign --out`), when
/// one exists. The records alone can't show *how* the campaign ran —
/// prune rate, convergence splices, lockstep batch occupancy and
/// split-off rate live only in the snapshot.
fn report_telemetry_sidecar(store_path: &str) {
    let side = format!("{store_path}.telemetry.json");
    let Ok(json) = std::fs::read_to_string(&side) else {
        return;
    };
    match serde_json::from_str::<TelemetrySnapshot>(&json) {
        Ok(snap) => {
            eprintln!("{store_path}: run as {snap}");
            if snap.batch_members > 0 {
                eprintln!(
                    "{store_path}: lockstep batching: {} groups, {:.0}% occupancy, \
                     {:.0}% split off, mean lockstep prefix {:.0} instructions",
                    snap.batch_groups,
                    100.0 * snap.batch_occupancy(),
                    100.0 * snap.split_off_rate(),
                    snap.mean_lockstep_prefix(),
                );
            }
            if snap.vis_analytic() > 0 || snap.vis_replicated > 0 {
                eprintln!(
                    "{store_path}: EDM-visibility analysis: {} latent, {} overwritten, \
                     {} signature write-first, {} value-resolved, {} replicated \
                     (planned in {} µs)",
                    snap.vis_latent,
                    snap.vis_overwritten,
                    snap.sig_overwritten,
                    snap.value_resolved,
                    snap.vis_replicated,
                    snap.plan_micros,
                );
            }
            if snap.batch_vis_admitted > 0 || snap.batch_untraceable > 0 {
                eprintln!(
                    "{store_path}: lockstep admission: {} replicas admitted via \
                     visibility deltas, {} rejected as untraceable",
                    snap.batch_vis_admitted, snap.batch_untraceable,
                );
            }
        }
        Err(e) => eprintln!("note: {side} is unreadable ({e}); ignoring"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let rendered = if args.by_model {
        match render_by_model(&args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.files.len() == 2 {
        let first = match load(&args.files[0], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let second = match load(&args.files[1], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = ComparisonTable::new(&first, &second);
        if args.csv {
            cmp.to_csv()
        } else {
            cmp.render()
        }
    } else {
        let result = match load(&args.files[0], args.partial) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let table = tabulate(&result);
        if args.csv {
            table.to_csv()
        } else {
            table.render()
        }
    };

    println!("{rendered}");
    for path in &args.files {
        report_telemetry_sidecar(path);
    }
    if let Some(name) = &args.artifact {
        repro::write_artifact(name, &rendered);
    }
    ExitCode::SUCCESS
}
