//! Machine-readable campaign wall-clock benchmark — emits
//! `artifacts/BENCH_campaign.json` so CI can track the end-to-end speedup
//! trajectory of the campaign engine (checkpoint fast-forward, convergence
//! pruning, def/use fault-space pruning) release over release.
//!
//! ```text
//! bench_campaign [--reps N]
//! ```
//!
//! Three configurations of the same fixed-seed 40-fault campaign are timed
//! per workload:
//!
//! * `flat` — no checkpoints, every fault simulated (the original engine);
//! * `checkpointed` — golden checkpoints every 4 iterations, convergence
//!   pruning, every fault simulated;
//! * `pruned` — checkpointed plus the def/use planner (the default
//!   configuration of the `campaign` binary).
//!
//! The JSON also records the planner's simulated/analytic/replicated
//! split from live telemetry, so a regression in pruning coverage shows
//! up as data rather than as an unexplained slowdown.

use bera::goofi::campaign::{run_scifi_campaign, run_scifi_campaign_observed, CampaignConfig};
use bera::goofi::experiment::LoopConfig;
use bera::goofi::observer::Telemetry;
use bera::goofi::workload::Workload;
use bera::repro;
use serde::Serialize;
use std::time::Instant;

const FAULTS: usize = 40;
const SEED: u64 = 11;
const ITERATIONS: usize = 60;
const STRIDE: usize = 4;

#[derive(Serialize)]
struct WorkloadBench {
    workload: String,
    flat_ms: f64,
    checkpointed_ms: f64,
    pruned_ms: f64,
    /// flat / checkpointed — the checkpoint fast-forward win.
    checkpointing_speedup: f64,
    /// checkpointed / pruned — the def/use planner's further win.
    pruning_speedup: f64,
    /// flat / pruned — the combined end-to-end win.
    end_to_end_speedup: f64,
    simulated: usize,
    analytic: usize,
    replicated: usize,
}

#[derive(Serialize)]
struct BenchReport {
    faults: usize,
    seed: u64,
    iterations: usize,
    checkpoint_stride: usize,
    reps: u32,
    workloads: Vec<WorkloadBench>,
}

fn config(stride: usize, prune: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(FAULTS, SEED);
    cfg.loop_cfg = LoopConfig {
        iterations: ITERATIONS,
        checkpoint_stride: stride,
        ..LoopConfig::paper()
    };
    cfg.threads = 1;
    cfg.prune = prune;
    cfg
}

/// Times `reps` full campaign runs (after one warm-up) and returns the
/// mean wall-clock per run in milliseconds.
fn time_campaign(workload: &Workload, cfg: &CampaignConfig, reps: u32) -> f64 {
    let _ = run_scifi_campaign(workload, cfg);
    let started = Instant::now();
    for _ in 0..reps {
        let _ = run_scifi_campaign(workload, cfg);
    }
    started.elapsed().as_secs_f64() * 1000.0 / f64::from(reps)
}

fn bench_workload(name: &str, workload: &Workload, reps: u32) -> WorkloadBench {
    let flat_ms = time_campaign(workload, &config(0, false), reps);
    let checkpointed_ms = time_campaign(workload, &config(STRIDE, false), reps);
    let pruned_ms = time_campaign(workload, &config(STRIDE, true), reps);

    let telemetry = Telemetry::new(FAULTS);
    let _ = run_scifi_campaign_observed(workload, &config(STRIDE, true), &telemetry);
    let snap = telemetry.snapshot();

    WorkloadBench {
        workload: name.to_string(),
        flat_ms,
        checkpointed_ms,
        pruned_ms,
        checkpointing_speedup: flat_ms / checkpointed_ms,
        pruning_speedup: checkpointed_ms / pruned_ms,
        end_to_end_speedup: flat_ms / pruned_ms,
        simulated: snap.simulated(),
        analytic: snap.analytic,
        replicated: snap.replicated,
    }
}

fn main() {
    let mut reps = 15u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps expects a positive integer");
            }
            other => {
                eprintln!("usage: bench_campaign [--reps N] (unknown flag `{other}`)");
                std::process::exit(1);
            }
        }
    }

    let report = BenchReport {
        faults: FAULTS,
        seed: SEED,
        iterations: ITERATIONS,
        checkpoint_stride: STRIDE,
        reps,
        workloads: vec![
            bench_workload("Algorithm I", &Workload::algorithm_one(), reps),
            bench_workload("Algorithm II", &Workload::algorithm_two(), reps),
        ],
    };

    for w in &report.workloads {
        eprintln!(
            "{}: flat {:.2} ms, checkpointed {:.2} ms ({:.2}x), pruned {:.2} ms \
             ({:.2}x further, {:.2}x end-to-end; sim {} analytic {} replicated {})",
            w.workload,
            w.flat_ms,
            w.checkpointed_ms,
            w.checkpointing_speedup,
            w.pruned_ms,
            w.pruning_speedup,
            w.end_to_end_speedup,
            w.simulated,
            w.analytic,
            w.replicated,
        );
    }

    let json = serde_json::to_string(&report).expect("serialize bench report");
    repro::write_artifact("BENCH_campaign.json", &json);
}
