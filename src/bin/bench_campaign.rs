//! Machine-readable campaign wall-clock benchmark — emits
//! `artifacts/BENCH_campaign.json` so CI can track the end-to-end speedup
//! trajectory of the campaign engine (checkpoint fast-forward, convergence
//! pruning, def/use fault-space pruning, lockstep batching) release over
//! release.
//!
//! ```text
//! bench_campaign [--reps N] [--baseline PATH]
//! ```
//!
//! Four configurations of the same fixed-seed 40-fault campaign are timed
//! per workload:
//!
//! * `flat` — no checkpoints, every fault simulated (the original engine);
//! * `checkpointed` — golden checkpoints every 4 iterations, convergence
//!   pruning, every fault simulated;
//! * `pruned` — checkpointed plus the def/use planner;
//! * `batched` — pruned plus the lockstep batch engine (the default
//!   configuration of the `campaign` binary).
//!
//! A paper-scale section then times the 2000-fault seed-20010701 campaign
//! for each flip fault model in three regimes: scalar (`batch_width: 0`,
//! the PR 4 pruned baseline), batched with the EDM-visibility layer off
//! (the PR 5 baseline) and the default batched-with-visibility path. The
//! multi-bit models have no def/use planner, so there the lockstep walk
//! and the visibility admission carry the whole reduction; for single-bit
//! faults the planner already absorbs most of it and the honest per-model
//! numbers show all regimes. Alongside wall clock, each model records its
//! analytic-coverage split: how many lockstep replicas were rejected as
//! untraceable with and without the visibility trace, how many were
//! admitted through visibility deltas, and how many faults the planner
//! resolved from visibility windows and value rules. `BERA_FAULTS` scales
//! the section down for smoke runs.
//!
//! Each paper-scale model also records two absolute throughput columns —
//! `experiments_per_sec` and `simulated_instructions_per_sec` on the
//! default leg — tracking the fast-replay block engine and arena restore
//! (DESIGN.md §8j) directly.
//!
//! `--baseline PATH` compares the freshly measured speedup ratios against
//! a committed report and exits non-zero if any regressed by more than
//! 20% — ratios, not milliseconds, so the gate is portable across
//! machines. The throughput columns are gated the same way (they are
//! machine-dependent, but CI runners are homogeneous). The JSON also records the planner's and batch engine's
//! classification splits from live telemetry, so a regression in coverage
//! shows up as data rather than as an unexplained slowdown.

use bera::goofi::campaign::{run_scifi_campaign, run_scifi_campaign_observed, CampaignConfig};
use bera::goofi::experiment::{FaultModel, LoopConfig};
use bera::goofi::observer::Telemetry;
use bera::goofi::workload::Workload;
use bera::repro;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const FAULTS: usize = 40;
const SEED: u64 = 11;
const ITERATIONS: usize = 60;
const STRIDE: usize = 4;

/// The share of a baseline speedup ratio the fresh measurement must
/// retain: 0.8 = "fail the gate on a >20% regression".
const REGRESSION_FLOOR: f64 = 0.8;

#[derive(Serialize, Deserialize)]
struct WorkloadBench {
    workload: String,
    flat_ms: f64,
    checkpointed_ms: f64,
    pruned_ms: f64,
    batched_ms: f64,
    /// flat / checkpointed — the checkpoint fast-forward win.
    checkpointing_speedup: f64,
    /// checkpointed / pruned — the def/use planner's further win.
    pruning_speedup: f64,
    /// pruned / batched — the lockstep batch engine's further win.
    batching_speedup: f64,
    /// flat / batched — the combined end-to-end win.
    end_to_end_speedup: f64,
    simulated: usize,
    analytic: usize,
    replicated: usize,
}

#[derive(Serialize, Deserialize)]
struct ModelBench {
    model: String,
    /// Pruned scalar (`batch_width: 0`), visibility off — the PR 4
    /// baseline path.
    scalar_ms: f64,
    /// Batched with the visibility layer off — the PR 5 baseline path.
    batched_no_vis_ms: f64,
    /// The default batched path (EDM-visibility analysis on).
    batched_ms: f64,
    /// scalar / batched_no_vis — the lockstep engine's win alone.
    batching_speedup: f64,
    /// batched_no_vis / batched — the visibility layer's further win.
    vis_speedup: f64,
    /// scalar / batched — the combined per-model win.
    end_to_end_speedup: f64,
    /// Faults classified per wall-clock second on the default batched
    /// leg. Machine-dependent, unlike the speedup ratios, but CI runs on
    /// homogeneous runners and the fast-replay engine's win shows up here
    /// directly.
    experiments_per_sec: f64,
    /// Dynamic instructions the simulated residue executed per wall-clock
    /// second on the default batched leg — the throughput of the
    /// fast-replay block engine plus arena restore.
    simulated_instructions_per_sec: f64,
    simulated: usize,
    analytic: usize,
    replicated: usize,
    batch_members: usize,
    split_offs: usize,
    /// Lockstep replicas rejected as untraceable with the visibility
    /// layer off — the must-simulate population the layer targets.
    untraceable_without_vis: usize,
    /// The residual must-simulate population with the layer on.
    untraceable_with_vis: usize,
    /// Replicas admitted to lockstep groups through visibility deltas.
    vis_admitted: usize,
    /// Faults the planner classified from visibility windows and
    /// value-level rules (single-bit campaigns only).
    vis_analytic: usize,
}

impl ModelBench {
    /// The share of the untraceable must-simulate population the
    /// visibility layer removes (1.0 when there was none to remove).
    fn untraceable_reduction(&self) -> f64 {
        if self.untraceable_without_vis == 0 {
            1.0
        } else {
            1.0 - self.untraceable_with_vis as f64 / self.untraceable_without_vis as f64
        }
    }
}

#[derive(Serialize, Deserialize)]
struct PaperScale {
    faults: usize,
    seed: u64,
    iterations: usize,
    models: Vec<ModelBench>,
}

#[derive(Serialize, Deserialize)]
struct BenchReport {
    faults: usize,
    seed: u64,
    iterations: usize,
    checkpoint_stride: usize,
    reps: u32,
    workloads: Vec<WorkloadBench>,
    paper_scale: PaperScale,
}

fn config(stride: usize, prune: bool, batch_width: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(FAULTS, SEED);
    cfg.loop_cfg = LoopConfig {
        iterations: ITERATIONS,
        checkpoint_stride: stride,
        ..LoopConfig::paper()
    };
    cfg.threads = 1;
    cfg.prune = prune;
    cfg.batch_width = batch_width;
    cfg
}

/// Times `reps` full campaign runs (after one warm-up) and returns the
/// mean wall-clock per run in milliseconds.
fn time_campaign(workload: &Workload, cfg: &CampaignConfig, reps: u32) -> f64 {
    let _ = run_scifi_campaign(workload, cfg);
    let started = Instant::now();
    for _ in 0..reps {
        let _ = run_scifi_campaign(workload, cfg);
    }
    started.elapsed().as_secs_f64() * 1000.0 / f64::from(reps)
}

fn bench_workload(name: &str, workload: &Workload, reps: u32) -> WorkloadBench {
    let flat_ms = time_campaign(workload, &config(0, false, 0), reps);
    let checkpointed_ms = time_campaign(workload, &config(STRIDE, false, 0), reps);
    let pruned_ms = time_campaign(workload, &config(STRIDE, true, 0), reps);
    let batched_ms = time_campaign(workload, &config(STRIDE, true, 32), reps);

    let telemetry = Telemetry::new(FAULTS);
    let _ = run_scifi_campaign_observed(workload, &config(STRIDE, true, 32), &telemetry);
    let snap = telemetry.snapshot();

    WorkloadBench {
        workload: name.to_string(),
        flat_ms,
        checkpointed_ms,
        pruned_ms,
        batched_ms,
        checkpointing_speedup: flat_ms / checkpointed_ms,
        pruning_speedup: checkpointed_ms / pruned_ms,
        batching_speedup: pruned_ms / batched_ms,
        end_to_end_speedup: flat_ms / batched_ms,
        simulated: snap.simulated(),
        analytic: snap.analytic,
        replicated: snap.replicated,
    }
}

/// One measured paper-scale leg: two observed runs, keeping the faster
/// wall clock and the (run-invariant) final telemetry snapshot. At 2000
/// faults a run is long enough to be stable on a quiet machine, but CI
/// neighbours are not quiet — min-of-two rejects most of that noise.
fn run_timed(
    workload: &Workload,
    cfg: &CampaignConfig,
    faults: usize,
) -> (f64, bera::goofi::observer::TelemetrySnapshot) {
    let mut best_ms = f64::INFINITY;
    let mut snap = None;
    for _ in 0..2 {
        let telemetry = Telemetry::new(faults);
        let started = Instant::now();
        let _ = run_scifi_campaign_observed(workload, cfg, &telemetry);
        best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1000.0);
        snap = Some(telemetry.snapshot());
    }
    (best_ms, snap.expect("two runs measured"))
}

/// Times the paper-scale campaign (Algorithm I, the fixed report seed)
/// under `model`: scalar, batched without the visibility layer, and the
/// default batched-with-visibility path.
fn bench_paper_model(model: FaultModel, faults: usize) -> ModelBench {
    let mut cfg = CampaignConfig::paper(faults, repro::CAMPAIGN_SEED);
    cfg.threads = 1;
    cfg.fault_model = model;

    cfg.batch_width = 0;
    cfg.vis = false;
    let workload = Workload::algorithm_one();
    let (scalar_ms, _) = run_timed(&workload, &cfg, faults);

    cfg.batch_width = 32;
    let (batched_no_vis_ms, no_vis_snap) = run_timed(&workload, &cfg, faults);

    cfg.vis = true;
    let (batched_ms, snap) = run_timed(&workload, &cfg, faults);

    ModelBench {
        model: model.to_string(),
        scalar_ms,
        batched_no_vis_ms,
        batched_ms,
        batching_speedup: scalar_ms / batched_no_vis_ms,
        vis_speedup: batched_no_vis_ms / batched_ms,
        end_to_end_speedup: scalar_ms / batched_ms,
        experiments_per_sec: faults as f64 / (batched_ms / 1000.0),
        simulated_instructions_per_sec: snap.sim_instructions as f64 / (batched_ms / 1000.0),
        simulated: snap.simulated(),
        analytic: snap.analytic,
        replicated: snap.replicated,
        batch_members: snap.batch_members,
        split_offs: snap.split_offs,
        untraceable_without_vis: no_vis_snap.batch_untraceable,
        untraceable_with_vis: snap.batch_untraceable,
        vis_admitted: snap.batch_vis_admitted,
        vis_analytic: snap.vis_analytic(),
    }
}

/// Compares every speedup ratio in `fresh` against `baseline` and returns
/// the regressions (label, baseline ratio, fresh ratio).
fn regressions(fresh: &BenchReport, baseline: &BenchReport) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    let mut check = |label: String, base: f64, now: f64| {
        if now < REGRESSION_FLOOR * base {
            out.push((label, base, now));
        }
    };
    for w in &fresh.workloads {
        let Some(b) = baseline.workloads.iter().find(|b| b.workload == w.workload) else {
            continue;
        };
        check(
            format!("{} end-to-end", w.workload),
            b.end_to_end_speedup,
            w.end_to_end_speedup,
        );
    }
    for m in &fresh.paper_scale.models {
        let Some(b) = baseline
            .paper_scale
            .models
            .iter()
            .find(|b| b.model == m.model)
        else {
            continue;
        };
        // Millisecond columns vary by machine; the speedup ratio is the
        // portable signal, and only comparable at equal campaign size.
        if baseline.paper_scale.faults == fresh.paper_scale.faults {
            check(
                format!("paper-scale {} batching", m.model),
                b.batching_speedup,
                m.batching_speedup,
            );
            check(
                format!("paper-scale {} visibility", m.model),
                b.vis_speedup,
                m.vis_speedup,
            );
            // Coverage, not wall clock: the share of the untraceable
            // must-simulate population the visibility layer removes must
            // not collapse either.
            check(
                format!("paper-scale {} untraceable reduction", m.model),
                b.untraceable_reduction(),
                m.untraceable_reduction(),
            );
            // Absolute throughput of the fast-replay residue. These are
            // machine-dependent, but CI runners are homogeneous enough
            // that a >20% drop means the block engine or arena restore
            // regressed, not the hardware.
            check(
                format!("paper-scale {} experiments/s", m.model),
                b.experiments_per_sec,
                m.experiments_per_sec,
            );
            check(
                format!("paper-scale {} simulated instructions/s", m.model),
                b.simulated_instructions_per_sec,
                m.simulated_instructions_per_sec,
            );
        }
    }
    out
}

fn main() {
    let mut reps = 15u32;
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps expects a positive integer");
            }
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline expects a path"));
            }
            other => {
                eprintln!(
                    "usage: bench_campaign [--reps N] [--baseline PATH] (unknown flag `{other}`)"
                );
                std::process::exit(1);
            }
        }
    }

    let paper_faults = repro::fault_override(2000);
    let report = BenchReport {
        faults: FAULTS,
        seed: SEED,
        iterations: ITERATIONS,
        checkpoint_stride: STRIDE,
        reps,
        workloads: vec![
            bench_workload("Algorithm I", &Workload::algorithm_one(), reps),
            bench_workload("Algorithm II", &Workload::algorithm_two(), reps),
        ],
        paper_scale: PaperScale {
            faults: paper_faults,
            seed: repro::CAMPAIGN_SEED,
            iterations: LoopConfig::paper().iterations,
            models: vec![
                bench_paper_model(FaultModel::SingleBit, paper_faults),
                bench_paper_model(FaultModel::AdjacentDoubleBit, paper_faults),
                bench_paper_model(FaultModel::Burst { width: 3 }, paper_faults),
            ],
        },
    };

    for w in &report.workloads {
        eprintln!(
            "{}: flat {:.2} ms, checkpointed {:.2} ms ({:.2}x), pruned {:.2} ms \
             ({:.2}x further), batched {:.2} ms ({:.2}x further, {:.2}x end-to-end; \
             sim {} analytic {} replicated {})",
            w.workload,
            w.flat_ms,
            w.checkpointed_ms,
            w.checkpointing_speedup,
            w.pruned_ms,
            w.pruning_speedup,
            w.batched_ms,
            w.batching_speedup,
            w.end_to_end_speedup,
            w.simulated,
            w.analytic,
            w.replicated,
        );
    }
    for m in &report.paper_scale.models {
        eprintln!(
            "paper scale {} ({} faults): scalar {:.0} ms, batched no-vis {:.0} ms \
             ({:.2}x), batched {:.0} ms ({:.2}x further, {:.2}x end-to-end; \
             {:.0} exp/s, {:.2}M sim instr/s; \
             sim {} analytic {} replicated {}, {} batched {} split off; \
             untraceable {} -> {} ({:.0}% removed), {} admitted via vis, \
             {} planner vis-analytic)",
            m.model,
            report.paper_scale.faults,
            m.scalar_ms,
            m.batched_no_vis_ms,
            m.batching_speedup,
            m.batched_ms,
            m.vis_speedup,
            m.end_to_end_speedup,
            m.experiments_per_sec,
            m.simulated_instructions_per_sec / 1e6,
            m.simulated,
            m.analytic,
            m.replicated,
            m.batch_members,
            m.split_offs,
            m.untraceable_without_vis,
            m.untraceable_with_vis,
            100.0 * m.untraceable_reduction(),
            m.vis_admitted,
            m.vis_analytic,
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    repro::write_artifact("BENCH_campaign.json", &json);

    if let Some(path) = baseline_path {
        let contents = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline: BenchReport = match serde_json::from_str(&contents) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot parse baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let regressed = regressions(&report, &baseline);
        if regressed.is_empty() {
            eprintln!("baseline check passed: no speedup regressed below 80% of {path}");
        } else {
            for (label, base, now) in &regressed {
                eprintln!("regression: {label} speedup {now:.2}x < 80% of baseline {base:.2}x");
            }
            std::process::exit(1);
        }
    }
}
