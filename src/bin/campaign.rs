//! General-purpose campaign runner — GOOFI's command-line face.
//!
//! ```text
//! campaign [--workload alg1|alg2|alg2-colocated|alg2-assert-after|alg3]
//!          [--faults N] [--seed S] [--iterations K] [--threads T]
//!          [--parity-cache] [--checkpoint-stride K] [--json FILE]
//! ```

use bera::goofi::campaign::{run_scifi_campaign, CampaignConfig};
use bera::goofi::experiment::LoopConfig;
use bera::goofi::table::tabulate;
use bera::goofi::workload::Workload;
use std::process::ExitCode;

struct Args {
    workload: Workload,
    faults: usize,
    seed: u64,
    iterations: usize,
    threads: usize,
    parity_cache: bool,
    checkpoint_stride: usize,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::algorithm_one(),
        faults: 2000,
        seed: 1,
        iterations: 650,
        threads: 0,
        parity_cache: false,
        checkpoint_stride: LoopConfig::paper().checkpoint_stride,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "alg1" => Workload::algorithm_one(),
                    "alg2" => Workload::algorithm_two(),
                    "alg2-colocated" => Workload::algorithm_two_colocated_backup(),
                    "alg2-assert-after" => Workload::algorithm_two_assert_after_backup(),
                    "alg3" => Workload::algorithm_three(),
                    other => return Err(format!("unknown workload `{other}`")),
                };
            }
            "--faults" => {
                args.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--parity-cache" => args.parity_cache = true,
            "--checkpoint-stride" => {
                args.checkpoint_stride = value("--checkpoint-stride")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-stride: {e}"))?;
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: campaign [--workload alg1|alg2|alg2-colocated|alg2-assert-after|alg3]\n\
         \t[--faults N] [--seed S] [--iterations K] [--threads T]\n\
         \t[--parity-cache] [--checkpoint-stride K] [--json FILE]\n\
         \n\
         --checkpoint-stride K  capture a golden checkpoint every K iterations\n\
         \t(experiments fast-forward from the nearest checkpoint and prune\n\
         \tconverged tails; 0 replays every experiment from reset)"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = CampaignConfig::paper(args.faults, args.seed);
    cfg.loop_cfg = LoopConfig {
        iterations: args.iterations,
        parity_cache: args.parity_cache,
        checkpoint_stride: args.checkpoint_stride,
        ..LoopConfig::paper()
    };
    cfg.threads = args.threads;

    eprintln!(
        "running {} faults into `{}` ({} iterations, seed {}, checkpoint stride {})...",
        args.faults,
        args.workload.name(),
        args.iterations,
        args.seed,
        args.checkpoint_stride,
    );
    let started = std::time::Instant::now();
    let result = run_scifi_campaign(&args.workload, &cfg);
    let elapsed = started.elapsed();
    println!("{}", tabulate(&result).render());

    let pruned = result
        .records
        .iter()
        .filter(|r| r.pruned_at.is_some())
        .count();
    eprintln!(
        "{} faults in {:.2} s ({:.1} faults/s); {pruned} experiment(s) pruned by convergence",
        result.records.len(),
        elapsed.as_secs_f64(),
        result.records.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    if let Some(path) = args.json {
        match result.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("database written to {path}");
            }
            Err(e) => {
                eprintln!("error serialising results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
