//! General-purpose campaign runner — GOOFI's command-line face.
//!
//! ```text
//! campaign [--workload alg1|alg2|alg2-colocated|alg2-assert-after|alg3]
//!          [--faults N] [--seed S] [--iterations K] [--threads T]
//!          [--parity-cache] [--checkpoint-stride K]
//!          [--fault-model single|double|intermittent:N|stuck0|stuck1|burst:W]
//!          [--deadline SECS] [--unsupervised] [--no-prune] [--paranoid N]
//!          [--batch-width W] [--no-batch] [--no-vis]
//!          [--json FILE] [--out FILE] [--resume] [--progress]
//!          [--failpoint id=action[@N]]...
//! campaign --farm-init DIR [--shards N] [--lease-heartbeat-ms MS]
//!          [--lease-expiry-ms MS] [campaign flags...]
//! campaign --worker DIR [--worker-id ID] [--threads T]
//! campaign --farm-tend DIR
//! campaign --farm-merge DIR
//! ```
//!
//! `--out` streams every record to a checksummed JSONL store as it
//! classifies; `--resume` picks an interrupted store back up (validating
//! that it belongs to this exact campaign) and runs only the missing
//! faults; `--progress` prints live telemetry (throughput, ETA,
//! classification counters, checkpoint hit-rate, prune rate) to stderr.
//!
//! Experiments run supervised by default: panics and (with `--deadline`)
//! wall-clock overruns are contained, retried once at stride 0, and
//! quarantined as harness failures rather than aborting the campaign.
//! `--unsupervised` disables the containment as a debugging aid.
//!
//! Single-bit campaigns prune the fault space from the golden run's
//! def/use access trace by default (`DESIGN.md` § 8e): faults whose
//! target is overwritten before any read, or never accessed again, are
//! classified analytically, and faults sharing a first-read site run one
//! representative simulation. Bits the def/use trace cannot see are
//! classified from the golden run's EDM-visibility windows and value-level
//! rules (`DESIGN.md` § 8h) unless `--no-vis` turns that layer off.
//! `--no-prune` simulates every fault; `--paranoid N` re-simulates up to
//! N replicated class members per equivalence class and panics if any
//! disagrees with its representative.
//!
//! Builds carrying the `failpoints` feature accept `--failpoint
//! id=action[@N]` (repeatable) to arm deterministic crash/error/panic/
//! delay injection at the campaign plane's durability boundaries — the
//! manual-repro face of the crash-recovery assurance suite
//! (`ASSURANCE.md`, `tests/crash_recovery.rs`).
//!
//! Flip-model campaigns additionally run the lockstep batch engine
//! (`DESIGN.md` § 8f): plan survivors sharing a checkpoint window walk the
//! golden access trace together as copy-on-write deltas, classifying
//! replicas that never diverge without executing a single instruction and
//! materializing the rest at their divergence instant. `--batch-width W`
//! sizes the replica groups; `--no-batch` forces the scalar path.
//! Outcomes are bit-identical either way.

use bera::goofi::campaign::{prepare_campaign, CampaignConfig};
use bera::goofi::experiment::{ExperimentRecord, FaultModel, LoopConfig};
use bera::goofi::failpoints;
use bera::goofi::farm;
use bera::goofi::observer::{CampaignObserver, ObserverSet, Telemetry};
use bera::goofi::store::{headerless_remnant, write_telemetry_sidecar, JsonlStore, StoreHeader};
use bera::goofi::table::tabulate;
use bera::goofi::workload::Workload;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Args {
    workload: Workload,
    faults: usize,
    seed: u64,
    iterations: usize,
    threads: usize,
    parity_cache: bool,
    checkpoint_stride: usize,
    fault_model: FaultModel,
    deadline: Option<f64>,
    unsupervised: bool,
    no_prune: bool,
    no_vis: bool,
    paranoid: usize,
    batch_width: usize,
    json: Option<String>,
    out: Option<String>,
    resume: bool,
    progress: bool,
    failpoints: Vec<String>,
    farm_init: Option<String>,
    shards: usize,
    lease_heartbeat_ms: u64,
    lease_expiry_ms: u64,
    worker: Option<String>,
    worker_id: Option<String>,
    farm_merge: Option<String>,
    farm_tend: Option<String>,
    workload_key: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::algorithm_one(),
        faults: 2000,
        seed: 1,
        iterations: 650,
        threads: 0,
        parity_cache: false,
        checkpoint_stride: LoopConfig::paper().checkpoint_stride,
        fault_model: FaultModel::SingleBit,
        deadline: None,
        unsupervised: false,
        no_prune: false,
        no_vis: false,
        paranoid: 0,
        batch_width: CampaignConfig::paper(1, 0).batch_width,
        json: None,
        out: None,
        resume: false,
        progress: false,
        failpoints: Vec::new(),
        farm_init: None,
        shards: 4,
        lease_heartbeat_ms: farm::LeasePolicy::default().heartbeat_ms,
        lease_expiry_ms: farm::LeasePolicy::default().expiry_ms,
        worker: None,
        worker_id: None,
        farm_merge: None,
        farm_tend: None,
        workload_key: "alg1".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--workload" => {
                let key = value("--workload")?;
                args.workload =
                    Workload::by_key(&key).ok_or_else(|| format!("unknown workload `{key}`"))?;
                args.workload_key = key;
            }
            "--faults" => {
                args.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--parity-cache" => args.parity_cache = true,
            "--checkpoint-stride" => {
                args.checkpoint_stride = value("--checkpoint-stride")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-stride: {e}"))?;
            }
            "--fault-model" => {
                args.fault_model = value("--fault-model")?
                    .parse()
                    .map_err(|e| format!("--fault-model: {e}"))?;
            }
            "--deadline" => {
                let secs: f64 = value("--deadline")?
                    .parse()
                    .map_err(|e| format!("--deadline: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--deadline expects a positive number of seconds".to_string());
                }
                args.deadline = Some(secs);
            }
            "--unsupervised" => args.unsupervised = true,
            "--no-prune" => args.no_prune = true,
            "--no-vis" => args.no_vis = true,
            "--paranoid" => {
                args.paranoid = value("--paranoid")?
                    .parse()
                    .map_err(|e| format!("--paranoid: {e}"))?;
            }
            "--batch-width" => {
                args.batch_width = value("--batch-width")?
                    .parse()
                    .map_err(|e| format!("--batch-width: {e}"))?;
            }
            "--no-batch" => args.batch_width = 0,
            "--json" => args.json = Some(value("--json")?),
            "--out" => args.out = Some(value("--out")?),
            "--resume" => args.resume = true,
            "--progress" => args.progress = true,
            "--failpoint" => args.failpoints.push(value("--failpoint")?),
            "--farm-init" => args.farm_init = Some(value("--farm-init")?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--lease-heartbeat-ms" => {
                args.lease_heartbeat_ms = value("--lease-heartbeat-ms")?
                    .parse()
                    .map_err(|e| format!("--lease-heartbeat-ms: {e}"))?;
            }
            "--lease-expiry-ms" => {
                args.lease_expiry_ms = value("--lease-expiry-ms")?
                    .parse()
                    .map_err(|e| format!("--lease-expiry-ms: {e}"))?;
            }
            "--worker" => args.worker = Some(value("--worker")?),
            "--worker-id" => args.worker_id = Some(value("--worker-id")?),
            "--farm-merge" => args.farm_merge = Some(value("--farm-merge")?),
            "--farm-tend" => args.farm_tend = Some(value("--farm-tend")?),
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let farm_modes = [
        args.farm_init.is_some(),
        args.worker.is_some(),
        args.farm_merge.is_some(),
        args.farm_tend.is_some(),
    ]
    .iter()
    .filter(|&&m| m)
    .count();
    if farm_modes > 1 {
        return Err(
            "--farm-init, --worker, --farm-merge and --farm-tend are distinct \
             modes; pick one per invocation"
                .to_string(),
        );
    }
    if farm_modes > 0 && (args.out.is_some() || args.resume || args.json.is_some()) {
        return Err(
            "farm modes manage their own stores inside the farm directory; \
             drop --out/--resume/--json"
                .to_string(),
        );
    }
    if args.worker_id.is_some() && args.worker.is_none() {
        return Err("--worker-id only makes sense with --worker DIR".to_string());
    }
    if args.resume && args.out.is_none() {
        return Err("--resume requires --out FILE (the store to resume from)".to_string());
    }
    if args.unsupervised && args.deadline.is_some() {
        return Err("--deadline requires supervision; drop --unsupervised".to_string());
    }
    if args.no_prune && args.paranoid > 0 {
        return Err("--paranoid cross-checks the pruner; drop --no-prune".to_string());
    }
    if !args.failpoints.is_empty() && !failpoints::ENABLED {
        return Err(
            "--failpoint requires a build with the `failpoints` feature \
             (cargo run --features failpoints --bin campaign ...)"
                .to_string(),
        );
    }
    for spec in &args.failpoints {
        failpoints::configure(spec).map_err(|e| format!("--failpoint: {e}"))?;
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: campaign [--workload alg1|alg2|alg2-colocated|alg2-assert-after|alg3]\n\
         \t[--faults N] [--seed S] [--iterations K] [--threads T]\n\
         \t[--parity-cache] [--checkpoint-stride K]\n\
         \t[--fault-model single|double|intermittent:N|stuck0|stuck1|burst:W]\n\
         \t[--deadline SECS] [--unsupervised] [--no-prune] [--paranoid N]\n\
         \t[--batch-width W] [--no-batch]\n\
         \t[--json FILE] [--out FILE] [--resume] [--progress]\n\
         \n\
         --checkpoint-stride K  capture a golden checkpoint every K iterations\n\
         \t(experiments fast-forward from the nearest checkpoint and prune\n\
         \tconverged tails; 0 replays every experiment from reset)\n\
         --fault-model M  single bit-flip (default), adjacent double flip,\n\
         \tintermittent:N (re-asserts at the next N iteration boundaries),\n\
         \tstuck0/stuck1 (bit forced for the rest of the run), or\n\
         \tburst:W (random-width cluster of up to W adjacent bits)\n\
         --deadline SECS  wall-clock watchdog per experiment attempt; an\n\
         \toverrun is retried once at stride 0, then quarantined\n\
         --unsupervised   run experiments bare: a panicking experiment\n\
         \taborts the whole campaign (debugging aid)\n\
         --no-prune     simulate every fault; disables the def/use\n\
         \taccess-trace pruner (single-bit campaigns classify overwritten/\n\
         \tlatent faults analytically and share one simulation per\n\
         \tequivalence class; outcomes are bit-identical either way)\n\
         --paranoid N   re-simulate up to N replicated members per\n\
         \tequivalence class as a runtime cross-check of the pruner\n\
         --batch-width W  lockstep-batch up to W replicas per checkpoint\n\
         \twindow against the golden access trace (flip models only;\n\
         \toutcomes are bit-identical to the scalar path)\n\
         --no-batch     force the scalar per-fault path (= --batch-width 0)\n\
         --no-vis       disable EDM-visibility analytic classification of\n\
         	bits the def/use trace cannot see (they simulate instead;\n\
         	outcomes are bit-identical either way)\n\
         --out FILE     stream records to a checksummed JSONL result store\n\
         --resume       continue an interrupted store (validates that it\n\
         \tbelongs to this campaign; re-runs only the missing faults)\n\
         --progress     live telemetry on stderr (throughput, ETA, counters)\n\
         --failpoint id=action[@N]  arm a failpoint (builds with the\n\
         \t`failpoints` feature only): deterministic crash/error/panic/\n\
         \tdelay injection at the store/supervisor/claim boundaries, for\n\
         \tcrash-recovery testing and manual repro (see ASSURANCE.md);\n\
         \t@N fires from the Nth hit; repeat the flag to arm several\n\
         \n\
         multi-process farm modes (DESIGN.md \u{a7} 8i; one per invocation):\n\
         --farm-init DIR  split this campaign into --shards N lease-claimed\n\
         \tshards and publish the farm manifest under DIR\n\
         --shards N       shard count for --farm-init (default 4)\n\
         --lease-heartbeat-ms MS / --lease-expiry-ms MS  lease timing for\n\
         \t--farm-init (defaults 1000/10000; expiry must be \u{2265} 2\u{d7} heartbeat)\n\
         --worker DIR     claim and run shards of the farm at DIR until\n\
         \tevery shard is done ([--worker-id ID] names this worker)\n\
         --farm-tend DIR  coordinator loop: reclaim expired leases, report\n\
         \tprogress, and merge + print tables when all shards finish\n\
         --farm-merge DIR fold completed segments into DIR/merged.jsonl\n\
         \t(byte-identical to a single-process run) and print the tables"
    );
}

/// Prints a rate-limited telemetry line from inside the worker threads.
struct ProgressPrinter<'a> {
    telemetry: &'a Telemetry,
    every: Duration,
    last: Mutex<Instant>,
}

impl<'a> ProgressPrinter<'a> {
    fn new(telemetry: &'a Telemetry, every: Duration) -> Self {
        ProgressPrinter {
            telemetry,
            every,
            last: Mutex::new(Instant::now() - every),
        }
    }
}

impl CampaignObserver for ProgressPrinter<'_> {
    fn experiment_classified(&self, _index: usize, _record: &ExperimentRecord) {
        let mut last = self.last.lock().expect("progress lock poisoned");
        if last.elapsed() < self.every {
            return;
        }
        *last = Instant::now();
        eprintln!("progress: {}", self.telemetry.snapshot());
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = CampaignConfig::paper(args.faults, args.seed);
    cfg.loop_cfg = LoopConfig {
        iterations: args.iterations,
        parity_cache: args.parity_cache,
        checkpoint_stride: args.checkpoint_stride,
        ..LoopConfig::paper()
    };
    cfg.threads = args.threads;
    cfg.fault_model = args.fault_model;
    cfg.prune = !args.no_prune;
    cfg.vis = !args.no_vis;
    cfg.paranoid = args.paranoid;
    cfg.batch_width = args.batch_width;
    cfg.supervisor = if args.unsupervised {
        None
    } else {
        Some(bera::goofi::supervisor::SupervisorConfig {
            deadline: args.deadline.map(Duration::from_secs_f64),
            ..Default::default()
        })
    };

    if let Some(dir) = args.farm_init.clone() {
        return farm_init_main(&args, &cfg, Path::new(&dir));
    }
    if let Some(dir) = args.worker.clone() {
        return farm_worker_main(&args, Path::new(&dir));
    }
    if let Some(dir) = args.farm_merge.clone() {
        return farm_merge_main(Path::new(&dir));
    }
    if let Some(dir) = args.farm_tend.clone() {
        return farm_tend_main(Path::new(&dir));
    }

    eprintln!(
        "running {} faults into `{}` ({} iterations, seed {}, checkpoint stride {})...",
        args.faults,
        args.workload.name(),
        args.iterations,
        args.seed,
        args.checkpoint_stride,
    );
    let started = std::time::Instant::now();
    let prepared = prepare_campaign(&args.workload, &cfg);

    // Attach the streaming store (fresh or resumed) before any experiment
    // runs, so every classified record is durable the moment it exists.
    let mut preloaded: Vec<Option<ExperimentRecord>> = Vec::new();
    let store = match &args.out {
        Some(path) => {
            let path = Path::new(path);
            let header = StoreHeader::new(args.workload.name(), &cfg, prepared.golden());
            if args.resume && path.exists() && headerless_remnant(path) {
                // A crash between store creation and a durable header
                // leaves an empty or newline-free file: provably no
                // records, so recovery is a fresh start, not a refusal.
                eprintln!(
                    "note: {} is a headerless remnant (crash before the \
                     header was durable); starting the store afresh",
                    path.display()
                );
                match JsonlStore::create(path, &header) {
                    Ok(store) => store,
                    Err(e) => {
                        eprintln!("error: cannot recreate {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else if args.resume && path.exists() {
                match JsonlStore::open_resume(path, &header) {
                    Ok((store, loaded)) => {
                        if loaded.torn_tail {
                            eprintln!(
                                "note: store had a torn final line (crash mid-write); \
                                 that fault will be re-run"
                            );
                        }
                        eprintln!(
                            "resuming {}: {}/{} records already complete",
                            path.display(),
                            loaded.done(),
                            args.faults
                        );
                        preloaded = loaded.records;
                        store
                    }
                    Err(e) => {
                        eprintln!("error: cannot resume {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match JsonlStore::create(path, &header) {
                    Ok(store) => store,
                    Err(e) => {
                        eprintln!("error: cannot create {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        None => {
            // No store: run purely in memory as before.
            let telemetry = Telemetry::new(args.faults);
            let printer = ProgressPrinter::new(&telemetry, Duration::from_millis(500));
            let mut observers = ObserverSet::new();
            observers.push(&telemetry);
            if args.progress {
                observers.push(&printer);
            }
            let result = prepared.run(&observers);
            return finish(&args, result, &telemetry, started);
        }
    };

    let telemetry = Telemetry::new(args.faults);
    telemetry.note_preloaded(preloaded.iter().filter(|r| r.is_some()).count());
    let printer = ProgressPrinter::new(&telemetry, Duration::from_millis(500));
    let mut observers = ObserverSet::new();
    observers.push(&store);
    observers.push(&telemetry);
    if args.progress {
        observers.push(&printer);
    }
    let result = prepared.run_resumed(preloaded, &observers);
    drop(observers);
    if let Err(e) = store.finish() {
        eprintln!("error: result store failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &args.out {
        eprintln!("result store written to {path}");
    }
    finish(&args, result, &telemetry, started)
}

fn finish(
    args: &Args,
    result: bera::goofi::campaign::CampaignResult,
    telemetry: &Telemetry,
    started: std::time::Instant,
) -> ExitCode {
    let elapsed = started.elapsed();
    println!("{}", tabulate(&result).render());

    let snap = telemetry.snapshot();
    eprintln!(
        "{} faults in {:.2} s ({:.1} faults/s); telemetry: {snap}",
        result.records.len(),
        elapsed.as_secs_f64(),
        result.records.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    // A result store gets a telemetry sidecar: the snapshot holds the
    // execution-strategy counters (prune/splice/batch/split-off) that the
    // records themselves don't carry, so `report` can show how a stored
    // campaign was run. Written atomically (temp file + rename) so a
    // crash mid-write cannot leave a truncated sidecar.
    if let Some(out) = &args.out {
        match write_telemetry_sidecar(Path::new(out), &snap) {
            Ok(side) => eprintln!("telemetry written to {}", side.display()),
            Err(e) => {
                eprintln!("error writing telemetry sidecar for {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.json {
        match result.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("database written to {path}");
            }
            Err(e) => {
                eprintln!("error serialising results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `--farm-init DIR`: publish a farm manifest for this campaign.
fn farm_init_main(args: &Args, cfg: &CampaignConfig, root: &Path) -> ExitCode {
    let lease = farm::LeasePolicy {
        heartbeat_ms: args.lease_heartbeat_ms,
        expiry_ms: args.lease_expiry_ms,
        ..farm::LeasePolicy::default()
    };
    match farm::init_farm(root, &args.workload_key, cfg, args.shards, lease) {
        Ok(manifest) => {
            eprintln!(
                "farm initialized at {}: {} faults across {} shard(s), \
                 heartbeat {} ms / expiry {} ms",
                root.display(),
                manifest.faults,
                manifest.shards.len(),
                manifest.lease.heartbeat_ms,
                manifest.lease.expiry_ms,
            );
            eprintln!(
                "start workers with: campaign --worker {} [--threads T]",
                root.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--worker DIR`: claim and run shards until the farm is finished.
fn farm_worker_main(args: &Args, root: &Path) -> ExitCode {
    let worker_id = args
        .worker_id
        .clone()
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    match farm::run_worker(root, &worker_id, args.threads, &mut |line| {
        eprintln!("{line}");
    }) {
        Ok(summary) => {
            eprintln!(
                "worker {worker_id} done: {} shard(s) completed, {} lease(s) lost",
                summary.completed.len(),
                summary.lost.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--farm-merge DIR`: fold completed segments into the canonical store
/// and print the paper tables from it.
fn farm_merge_main(root: &Path) -> ExitCode {
    let report = match farm::merge_farm(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "merged {} records into {}",
        report.records,
        report.path.display()
    );
    match bera::goofi::store::load_store(&report.path)
        .map_err(farm::FarmError::Store)
        .and_then(|loaded| loaded.into_result().map_err(farm::FarmError::Store))
    {
        Ok(result) => {
            println!("{}", tabulate(&result).render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: merged store does not read back: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--farm-tend DIR`: the coordinator loop — reclaim expired leases and
/// report progress until every shard is done, then merge.
fn farm_tend_main(root: &Path) -> ExitCode {
    let manifest = match farm::read_manifest(root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = Duration::from_millis(manifest.lease.heartbeat_ms.max(100));
    loop {
        match farm::tend_once(root, &manifest) {
            Ok(n) if n > 0 => eprintln!("tend: reclaimed {n} expired lease(s)"),
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: tend sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let assembly = match farm::assemble_farm(root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let done_shards = assembly.shards.iter().filter(|s| s.done).count();
        eprintln!(
            "tend: {}/{} shards done, {}/{} records",
            done_shards,
            assembly.shards.len(),
            assembly.done(),
            assembly.manifest.faults
        );
        if assembly.shards.iter().all(|s| s.done) {
            break;
        }
        std::thread::sleep(sweep);
    }
    farm_merge_main(root)
}
