//! Regenerates the paper's **figures** as CSV series in `artifacts/`:
//!
//! * Figure 3 — reference vs actual engine speed (fault-free);
//! * Figure 4 — engine load profile;
//! * Figure 5 — fault-free controller output `u_lim`;
//! * Figure 7 — a *permanent* severe value failure (output locked at a
//!   limit), Algorithm I;
//! * Figure 8 — a *semi-permanent* severe value failure, Algorithm I;
//! * Figure 9 — a *transient* minor value failure, Algorithm I;
//! * Figure 10 — the in-range state corruption (x := 69° at t = 6 s) that
//!   Algorithm II's range assertions cannot detect.

use bera::goofi::campaign::{run_fault_list, CampaignConfig, FaultList};
use bera::goofi::classify::{Outcome, Severity};
use bera::goofi::experiment::{golden_run, run_experiment, FaultSpec, LoopConfig};
use bera::goofi::workload::Workload;
use bera::repro;
use bera::tcpu::machine::{Machine, RunExit, PORT_R, PORT_U, PORT_Y};

fn main() {
    let cfg = LoopConfig::paper();
    let alg1 = Workload::algorithm_one();
    let alg2 = Workload::algorithm_two();
    let golden1 = golden_run(&alg1, &cfg);
    let golden2 = golden_run(&alg2, &cfg);
    let t: Vec<f64> = (0..cfg.iterations)
        .map(|k| k as f64 * cfg.sample_interval)
        .collect();

    // ---- Figures 3, 4, 5: the fault-free workload ----
    let r: Vec<f64> = t.iter().map(|&tt| cfg.profiles.reference(tt)).collect();
    let mut fig3 = String::from("t,r,y\n");
    for ((tt, rr), yy) in t.iter().zip(r.iter()).zip(golden1.speeds.iter()) {
        fig3.push_str(&format!("{tt:.4},{rr:.2},{yy:.2}\n"));
    }
    repro::write_artifact("fig3_speed.csv", &fig3);

    let load: Vec<f64> = t.iter().map(|&tt| cfg.profiles.load(tt)).collect();
    repro::write_artifact("fig4_load.csv", &repro::csv_two("t,load", &t, &load));

    let u: Vec<f64> = golden1
        .outputs
        .iter()
        .map(|&b| f64::from(f32::from_bits(b)))
        .collect();
    repro::write_artifact("fig5_output.csv", &repro::csv_two("t,u_lim", &t, &u));

    // ---- Figures 7, 8, 9: exemplar failures found by a campaign sweep ----
    let sweep_faults = repro::fault_override(4000);
    let campaign_cfg = CampaignConfig::paper(sweep_faults, repro::CAMPAIGN_SEED + 7);
    let list = FaultList::sample(
        sweep_faults,
        repro::CAMPAIGN_SEED + 7,
        golden1.total_instructions,
    );
    let records = run_fault_list(&alg1, &campaign_cfg, &golden1, &list.faults);

    let mut exemplars: Vec<(Severity, &str, Option<FaultSpec>)> = vec![
        (Severity::Permanent, "fig7_permanent.csv", None),
        (Severity::SemiPermanent, "fig8_semi_permanent.csv", None),
        (Severity::Transient, "fig9_transient.csv", None),
    ];
    for rec in &records {
        if let Outcome::ValueFailure(s) = rec.outcome {
            for (sev, _, slot) in exemplars.iter_mut() {
                if *sev == s && slot.is_none() {
                    *slot = Some(rec.fault);
                }
            }
        }
    }
    for (sev, file, slot) in &exemplars {
        match slot {
            Some(fault) => {
                let rec = run_experiment(&alg1, &cfg, &golden1, *fault, true);
                let outputs = rec.outputs.expect("detail mode records outputs");
                let csv = repro::csv_compare(&golden1.outputs, &outputs, cfg.sample_interval);
                repro::write_artifact(file, &csv);
                println!(
                    "{sev:?} exemplar: {:?} injected at instruction {} (max deviation {:.2}°)",
                    rec.location, fault.inject_at, rec.max_deviation
                );
            }
            None => println!("warning: no {sev:?} exemplar found in {sweep_faults} faults"),
        }
    }

    // ---- Figure 10: in-range x corruption under Algorithm II ----
    let fig10 = figure10(&alg2, &cfg);
    let csv = repro::csv_compare(&golden2.outputs, &fig10, cfg.sample_interval);
    repro::write_artifact("fig10_inrange_state_error.csv", &csv);
    let max_dev = golden2
        .outputs
        .iter()
        .zip(fig10.iter())
        .map(|(g, f)| (f64::from(f32::from_bits(*g)) - f64::from(f32::from_bits(*f))).abs())
        .fold(0.0, f64::max);
    println!("figure 10: x forced to 69° at t = 6 s, max output deviation {max_dev:.2}°");
}

/// Drives Algorithm II and forces the cached state variable to 69° at
/// t = 6 s (iteration 390) through the scan chain — the corruption of
/// Figure 10 that stays inside the asserted range.
fn figure10(workload: &Workload, cfg: &LoopConfig) -> Vec<u32> {
    let mut machine = Machine::new();
    machine.load_program(workload.program());
    let mut engine = cfg.engine.clone();
    let x_addr = workload.x_address();
    let mut outputs = Vec::with_capacity(cfg.iterations);
    for k in 0..cfg.iterations {
        if k == 390 {
            assert!(
                machine.scan_write_cached(x_addr, 69.0f32.to_bits()),
                "x must be cache-resident for the figure-10 scenario"
            );
        }
        let t = k as f64 * cfg.sample_interval;
        machine.set_port_f32(PORT_R, cfg.profiles.reference(t) as f32);
        machine.set_port_f32(PORT_Y, engine.speed_rpm() as f32);
        match machine.run(1_000_000) {
            RunExit::Yield => {}
            other => panic!("figure-10 run must not trap: {other:?}"),
        }
        let u = machine.port_out_f32(PORT_U);
        outputs.push(u.to_bits());
        engine.advance(
            f64::from(u).clamp(0.0, 70.0),
            cfg.profiles.load(t),
            cfg.sample_interval,
        );
    }
    outputs
}
