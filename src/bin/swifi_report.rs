//! Software-implemented fault injection (SWIFI) on the native controllers —
//! GOOFI's second injection technique, applied to the same question: what
//! does a single bit-flip in the controller state do to the engine, and how
//! much does each protection scheme help?

use bera::core::assertion::All;
use bera::core::controller::Limits;
use bera::core::{
    Assertion, PiController, Protected, ProtectedPiController, RangeAssertion, RateAssertion, Siso,
};
use bera::goofi::classify::Severity;
use bera::goofi::swifi::{run_swifi, SwifiConfig, SwifiResult};
use bera::repro;

fn line(label: &str, r: &SwifiResult) -> String {
    format!(
        "{label:<40}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}\n",
        r.len(),
        r.count(Severity::Permanent),
        r.count(Severity::SemiPermanent),
        r.count(Severity::Transient),
        r.count(Severity::Insignificant),
        r.masked(),
    )
}

fn main() {
    let faults = repro::fault_override(2000);
    let cfg = SwifiConfig::paper(faults, repro::CAMPAIGN_SEED);

    let mut report = format!(
        "{:<40}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}\n",
        "Controller", "faults", "perm", "semi", "trans", "insig", "masked"
    );

    report.push_str(&line(
        "PiController (Algorithm I)",
        &run_swifi(PiController::paper, &cfg),
    ));
    report.push_str(&line(
        "ProtectedPiController (Algorithm II)",
        &run_swifi(ProtectedPiController::paper, &cfg),
    ));
    report.push_str(&line(
        "Protected<PiController> (Section 4.3)",
        &run_swifi(
            || {
                Siso::new(
                    Protected::uniform(PiController::paper(), Limits::throttle()),
                    Limits::throttle(),
                )
            },
            &cfg,
        ),
    ));
    report.push_str(&line(
        "Protected + rate assertion (Alg III)",
        &run_swifi(
            || {
                let rate = RateAssertion::new(5.0);
                let state: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
                    vec![Box::new(All::new(RangeAssertion::throttle(), rate))];
                let output: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
                    vec![Box::new(RangeAssertion::throttle())];
                Siso::new(
                    Protected::with_assertions(PiController::paper(), state, output),
                    Limits::throttle(),
                )
            },
            &cfg,
        ),
    ));

    println!("{report}");
    repro::write_artifact("swifi_report.txt", &report);
}
