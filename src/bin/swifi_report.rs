//! Software-implemented fault injection (SWIFI) on the native controllers —
//! GOOFI's second injection technique, applied to the same question: what
//! does a bit fault in the controller state do to the engine, and how much
//! does each protection scheme help?
//!
//! ```text
//! swifi_report [--faults N]
//!              [--fault-model single|double|intermittent:N|stuck0|stuck1|burst:W]
//! ```

use bera::core::assertion::All;
use bera::core::controller::Limits;
use bera::core::{
    Assertion, PiController, Protected, ProtectedPiController, RangeAssertion, RateAssertion, Siso,
};
use bera::goofi::classify::Severity;
use bera::goofi::experiment::FaultModel;
use bera::goofi::swifi::{run_swifi, SwifiConfig, SwifiResult};
use bera::repro;
use std::process::ExitCode;

fn line(label: &str, r: &SwifiResult) -> String {
    format!(
        "{label:<40}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}\n",
        r.len(),
        r.count(Severity::Permanent),
        r.count(Severity::SemiPermanent),
        r.count(Severity::Transient),
        r.count(Severity::Insignificant),
        r.masked(),
    )
}

fn parse_args() -> Result<(Option<usize>, FaultModel), String> {
    let mut faults = None;
    let mut model = FaultModel::SingleBit;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--faults" => {
                faults = Some(
                    value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--fault-model" => {
                model = value("--fault-model")?
                    .parse()
                    .map_err(|e| format!("--fault-model: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((faults, model))
}

fn main() -> ExitCode {
    let (faults, model) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: swifi_report [--faults N]\n\
                 \t[--fault-model single|double|intermittent:N|stuck0|stuck1|burst:W]"
            );
            return ExitCode::FAILURE;
        }
    };
    let faults = faults.unwrap_or_else(|| repro::fault_override(2000));
    let mut cfg = SwifiConfig::paper(faults, repro::CAMPAIGN_SEED);
    cfg.model = model;

    let mut report = format!(
        "{:<40}{:>8}{:>10}{:>10}{:>10}{:>12}{:>10}\n",
        "Controller", "faults", "perm", "semi", "trans", "insig", "masked"
    );

    report.push_str(&line(
        "PiController (Algorithm I)",
        &run_swifi(PiController::paper, &cfg),
    ));
    report.push_str(&line(
        "ProtectedPiController (Algorithm II)",
        &run_swifi(ProtectedPiController::paper, &cfg),
    ));
    report.push_str(&line(
        "Protected<PiController> (Section 4.3)",
        &run_swifi(
            || {
                Siso::new(
                    Protected::uniform(PiController::paper(), Limits::throttle()),
                    Limits::throttle(),
                )
            },
            &cfg,
        ),
    ));
    report.push_str(&line(
        "Protected + rate assertion (Alg III)",
        &run_swifi(
            || {
                let rate = RateAssertion::new(5.0);
                let state: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
                    vec![Box::new(All::new(RangeAssertion::throttle(), rate))];
                let output: Vec<Box<dyn Assertion<f64> + Send + Sync>> =
                    vec![Box::new(RangeAssertion::throttle())];
                Siso::new(
                    Protected::with_assertions(PiController::paper(), state, output),
                    Limits::throttle(),
                )
            },
            &cfg,
        ),
    ));

    println!("fault model: {model}");
    println!("{report}");
    repro::write_artifact("swifi_report.txt", &report);
    ExitCode::SUCCESS
}
