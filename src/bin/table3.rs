//! Regenerates **Table 3**: fault-injection results for Algorithm II
//! (2372 faults by default; override with `BERA_FAULTS=<n>`).

use bera::goofi::table::tabulate;
use bera::goofi::workload::Workload;
use bera::repro;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let workload = Workload::algorithm_two();
    let result = repro::canonical_campaign(&workload, repro::ALG2_FAULTS);
    let table = tabulate(&result);
    let rendered = table.render();
    println!("{rendered}");
    println!(
        "severe share of value failures: {}",
        table.severe_share_of_failures().normal_ci95()
    );
    println!("campaign wall time: {:.1?}", t0.elapsed());
    let latency = bera::goofi::table::detection_latency_summary(&result);
    println!("detection latency (instructions): {latency}");
    repro::write_artifact("table3.txt", &rendered);
    repro::write_artifact("table3.csv", &table.to_csv());
    repro::write_artifact("algorithm2.lst", &workload.listing());
    repro::write_artifact(
        "table3_campaign.json",
        &result.to_json().expect("campaign serialises"),
    );
}
