//! The paper's future-work experiment, carried out: fault injection into a
//! **multiple-input multiple-output** controller (a two-spool turbojet with
//! fuel-flow and nozzle-area actuators).
//!
//! The study ladders up the protection recipes of Section 4.3:
//!
//! 1. unprotected state-space controller;
//! 2. loose range assertions (a wide "sanity" envelope);
//! 3. tight range assertions (the actual physical envelope);
//! 4. tight range + rate assertions ("Algorithm III" for MIMO).
//!
//! The headline finding: unlike the SISO throttle (hard 0–70° limits), a
//! slow MIMO integrator has no naturally tight range, so range assertions
//! alone leave *in-range* corruptions that pin an actuator beyond the
//! observation window — the rate assertion closes exactly that hole.

use bera::core::assertion::{All, Assertion, RangeAssertion, RateAssertion};
use bera::core::controller::Limits;
use bera::core::{MimoController, Protected, StateSpace};
use bera::goofi::classify::Severity;
use bera::goofi::swifi::{run_swifi_mimo, MimoSwifiConfig, SwifiResult};
use bera::plant::Turbojet;
use bera::repro;

type DynAssert = Box<dyn Assertion<f64> + Send + Sync>;

fn controller() -> MimoController {
    MimoController::new(
        StateSpace::jet_engine_demo(),
        vec![Limits::new(0.0, 1.0); 2],
    )
}

fn with_assertions(state_range: Limits, rate: Option<f64>) -> Protected<MimoController> {
    let state: Vec<DynAssert> = (0..2)
        .map(|_| match rate {
            Some(delta) => Box::new(All::new(
                RangeAssertion::new(state_range),
                RateAssertion::new(delta),
            )) as DynAssert,
            None => Box::new(RangeAssertion::new(state_range)) as DynAssert,
        })
        .collect();
    let output: Vec<DynAssert> = (0..2)
        .map(|_| Box::new(RangeAssertion::new(Limits::new(0.0, 1.0))) as DynAssert)
        .collect();
    Protected::with_assertions(controller(), state, output)
}

fn line(label: &str, r: &SwifiResult) -> String {
    format!(
        "{label:<46}{:>8}{:>8}{:>8}{:>8}{:>10}{:>10}\n",
        r.len(),
        r.count(Severity::Permanent),
        r.count(Severity::SemiPermanent),
        r.count(Severity::Transient),
        r.count(Severity::Insignificant),
        r.masked(),
    )
}

fn main() {
    let faults = repro::fault_override(1500);
    let cfg = MimoSwifiConfig::demo(faults, repro::CAMPAIGN_SEED);
    let jet = Turbojet::demo();

    let mut report = format!(
        "{:<46}{:>8}{:>8}{:>8}{:>8}{:>10}{:>10}\n",
        "MIMO controller (two-spool turbojet)",
        "faults",
        "perm",
        "semi",
        "trans",
        "insig",
        "masked"
    );
    report.push_str(&line(
        "unprotected",
        &run_swifi_mimo(controller, &jet, &cfg),
    ));
    report.push_str(&line(
        "range assertions, loose envelope [-10, 10]",
        &run_swifi_mimo(
            || with_assertions(Limits::new(-10.0, 10.0), None),
            &jet,
            &cfg,
        ),
    ));
    report.push_str(&line(
        "range assertions, tight envelope [-0.5, 1.5]",
        &run_swifi_mimo(|| with_assertions(Limits::new(-0.5, 1.5), None), &jet, &cfg),
    ));
    report.push_str(&line(
        "tight range + rate assertion (|Δx| ≤ 0.05)",
        &run_swifi_mimo(
            || with_assertions(Limits::new(-0.5, 1.5), Some(0.05)),
            &jet,
            &cfg,
        ),
    ));

    println!("{report}");
    repro::write_artifact("mimo_study.txt", &report);
}
