//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. **Parity-protected cache** (the custom-hardware alternative the
//!    paper rejects on cost grounds) — severe value failures from cache
//!    faults should essentially disappear, detected as DATA ERROR instead;
//! 2. **Backups co-located with the state** — a single flip can then hit a
//!    variable and its backup together, weakening Algorithm II;
//! 3. **Assertion after the backup** — the corrupted state is saved before
//!    it is checked, so "recovery" restores the corrupted value;
//! 4. **Algorithm III (rate assertion)** — the paper's future-work
//!    extension, catching in-range corruptions like Figure 10's.

use bera::goofi::campaign::{run_scifi_campaign, CampaignConfig};
use bera::goofi::experiment::FaultModel;
use bera::goofi::table::tabulate;
use bera::goofi::workload::Workload;
use bera::repro;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let faults = repro::fault_override(4000);
    let mut report = String::new();
    report.push_str(&format!(
        "{:<42}{:>8}{:>10}{:>10}{:>12}{:>12}\n",
        "Configuration", "faults", "severe", "minor", "severe %", "data err %"
    ));

    let mut run = |label: &str, workload: &Workload, parity: bool, model: FaultModel| {
        let mut cfg = CampaignConfig::paper(faults, repro::CAMPAIGN_SEED);
        cfg.loop_cfg.parity_cache = parity;
        cfg.fault_model = model;
        let result = run_scifi_campaign(workload, &cfg);
        let table = tabulate(&result);
        let severe = table.count(bera::goofi::table::RowKind::SevereWrong, None);
        let minor = table.count(bera::goofi::table::RowKind::MinorWrong, None);
        let data_err = table.count(
            bera::goofi::table::RowKind::Edm(bera::tcpu::edm::ErrorMechanism::DataError),
            None,
        );
        let n = table.total_faults();
        report.push_str(&format!(
            "{label:<42}{n:>8}{severe:>10}{minor:>10}{:>11.2}%{:>11.2}%\n",
            100.0 * severe as f64 / n as f64,
            100.0 * data_err as f64 / n as f64,
        ));
    };

    let single = FaultModel::SingleBit;
    run("Algorithm I", &Workload::algorithm_one(), false, single);
    run(
        "Algorithm I + parity cache",
        &Workload::algorithm_one(),
        true,
        single,
    );
    run("Algorithm II", &Workload::algorithm_two(), false, single);
    run(
        "Algorithm II, co-located backups",
        &Workload::algorithm_two_colocated_backup(),
        false,
        single,
    );
    run(
        "Algorithm II, assert after backup",
        &Workload::algorithm_two_assert_after_backup(),
        false,
        single,
    );
    run(
        "Algorithm III (range + rate)",
        &Workload::algorithm_three(),
        false,
        single,
    );

    // Multi-cell upsets: two adjacent scan cells flip together. This is the
    // model under which separating the backups from the state matters.
    let double = FaultModel::AdjacentDoubleBit;
    run(
        "Algorithm II [2-bit upsets]",
        &Workload::algorithm_two(),
        false,
        double,
    );
    run(
        "Algorithm II, co-located backups [2-bit]",
        &Workload::algorithm_two_colocated_backup(),
        false,
        double,
    );

    println!("{report}");
    println!("ablation wall time: {:.1?}", t0.elapsed());
    repro::write_artifact("ablations.txt", &report);
}
