//! Regenerates **Table 4**: the Algorithm I vs Algorithm II comparison with
//! the permanent / semi-permanent / transient / insignificant split.

use bera::goofi::table::ComparisonTable;
use bera::goofi::workload::Workload;
use bera::repro;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let alg1 = repro::canonical_campaign(&Workload::algorithm_one(), repro::ALG1_FAULTS);
    let alg2 = repro::canonical_campaign(&Workload::algorithm_two(), repro::ALG2_FAULTS);
    let cmp = ComparisonTable::new(&alg1, &alg2);
    let rendered = cmp.render();
    println!("{rendered}");
    println!("campaign wall time: {:.1?}", t0.elapsed());
    repro::write_artifact("table4.txt", &rendered);
}
