//! # BERA — Best Effort Recovery & Assertions
//!
//! A reproduction of the DSN 2001 paper *"Reducing Critical Failures for
//! Control Algorithms Using Executable Assertions and Best Effort Recovery"*
//! (Vinter, Aidemark, Folkesson, Karlsson — Chalmers University of
//! Technology).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`bera_core`] (re-exported as `core`) — controllers, executable assertions, best effort
//!   recovery (the paper's contribution);
//! * [`bera_tcpu`] (`tcpu`) — a Thor-like 32-bit CPU simulator with scan-chain
//!   access to its state elements and the full set of hardware error
//!   detection mechanisms;
//! * [`bera_plant`] (`plant`) — the engine model and workload profiles;
//! * [`bera_goofi`] (`goofi`) — the fault-injection campaign framework
//!   (configuration, injection, logging, analysis);
//! * [`bera_stats`] (`stats`) — proportion confidence intervals and samplers;
//! * [`bera_rtw`] (`rtw`) — a Real-Time-Workshop-style code generator that
//!   compiles controller models to tcpu assembly.
//!
//! # Quickstart
//!
//! ```
//! use bera::core::{Controller, PiController, ProtectedPiController};
//! use bera::plant::{ClosedLoop, Engine, Profiles};
//!
//! let profiles = Profiles::paper();
//! let mut loop_ = ClosedLoop::new(Engine::paper(), PiController::paper());
//! let trace = loop_.run(&profiles, 650);
//! assert_eq!(trace.len(), 650);
//! ```

pub use bera_core as core;
pub use bera_goofi as goofi;
pub use bera_plant as plant;
pub use bera_rtw as rtw;
pub use bera_stats as stats;
pub use bera_tcpu as tcpu;

pub mod repro;
